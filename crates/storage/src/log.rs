//! Log-structured in-memory key-value store (one per storage server).
//!
//! RAMCloud keeps all values in an append-only log divided into segments,
//! with a hash index from key to log location; overwrites and deletes only
//! mark bytes dead, and a cleaner later rewrites the surviving entries of
//! dirty segments to the head, reclaiming memory. That design is what gives
//! RAMCloud its "high memory utilization" (§4.1). This module reproduces it:
//!
//! * entries are framed as `[u64 key][u32 len][len bytes]`;
//! * sealed segments are frozen [`Bytes`] so `get` is zero-copy;
//! * the cleaner compacts any segment whose dead fraction exceeds a
//!   threshold.

use std::collections::HashMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{Result, StorageError};

/// Default segment size (1 MiB, small enough to exercise cleaning in tests).
pub const DEFAULT_SEGMENT_BYTES: usize = 1 << 20;

const HEADER_BYTES: usize = 8 + 4;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Location {
    segment: u32,
    offset: u32,
    len: u32,
}

#[derive(Debug)]
enum Segment {
    /// Still being appended to.
    Open(BytesMut),
    /// Sealed and immutable; `get` hands out cheap slices.
    Sealed(Bytes),
}

impl Segment {
    fn len(&self) -> usize {
        match self {
            Segment::Open(b) => b.len(),
            Segment::Sealed(b) => b.len(),
        }
    }

    fn slice(&self, offset: usize, len: usize) -> Bytes {
        match self {
            Segment::Open(b) => Bytes::copy_from_slice(&b[offset..offset + len]),
            Segment::Sealed(b) => b.slice(offset..offset + len),
        }
    }
}

/// Append-only log store with hash index and segment cleaning.
#[derive(Debug)]
pub struct LogStore {
    segments: Vec<Segment>,
    index: HashMap<u64, Location>,
    /// Live payload+header bytes per segment (for cleaning decisions).
    live: Vec<usize>,
    segment_bytes: usize,
    /// Dead fraction above which a sealed segment is compacted.
    clean_threshold: f64,
    puts: u64,
    cleanings: u64,
}

impl Default for LogStore {
    fn default() -> Self {
        Self::new(DEFAULT_SEGMENT_BYTES)
    }
}

impl LogStore {
    /// Creates a store with the given segment size.
    ///
    /// # Panics
    ///
    /// Panics if `segment_bytes` cannot hold at least one small entry.
    pub fn new(segment_bytes: usize) -> Self {
        assert!(segment_bytes > HEADER_BYTES, "segment too small");
        Self {
            segments: vec![Segment::Open(BytesMut::with_capacity(segment_bytes))],
            index: HashMap::new(),
            live: vec![0],
            segment_bytes,
            clean_threshold: 0.5,
            puts: 0,
            cleanings: 0,
        }
    }

    fn head(&self) -> usize {
        self.segments.len() - 1
    }

    /// Appends an entry to the head segment, rolling if full. Returns its
    /// location. The caller maintains index/live accounting.
    fn append(&mut self, key: u64, value: &[u8]) -> Result<Location> {
        let entry_len = HEADER_BYTES + value.len();
        if entry_len > self.segment_bytes {
            return Err(StorageError::ValueTooLarge {
                key,
                len: value.len(),
                max: self.segment_bytes - HEADER_BYTES,
            });
        }
        let head = self.head();
        let needs_roll = match &self.segments[head] {
            Segment::Open(b) => b.len() + entry_len > self.segment_bytes,
            Segment::Sealed(_) => true,
        };
        if needs_roll {
            // Seal the current head and open a fresh one.
            if let Segment::Open(b) = &mut self.segments[head] {
                let frozen = std::mem::take(b).freeze();
                self.segments[head] = Segment::Sealed(frozen);
            }
            self.segments
                .push(Segment::Open(BytesMut::with_capacity(self.segment_bytes)));
            self.live.push(0);
        }
        let head = self.head();
        let Segment::Open(buf) = &mut self.segments[head] else {
            unreachable!("head segment is always open after roll");
        };
        let offset = buf.len() as u32;
        buf.put_u64_le(key);
        buf.put_u32_le(value.len() as u32);
        buf.put_slice(value);
        Ok(Location {
            segment: head as u32,
            offset,
            len: value.len() as u32,
        })
    }

    /// Inserts or overwrites `key`.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::ValueTooLarge`] for values beyond one segment.
    pub fn put(&mut self, key: u64, value: &[u8]) -> Result<()> {
        let loc = self.append(key, value)?;
        let entry_len = HEADER_BYTES + value.len();
        if let Some(old) = self.index.insert(key, loc) {
            self.live[old.segment as usize] -= HEADER_BYTES + old.len as usize;
        }
        self.live[loc.segment as usize] += entry_len;
        self.puts += 1;
        self.maybe_clean();
        Ok(())
    }

    /// Fetches the current value of `key`.
    pub fn get(&self, key: u64) -> Option<Bytes> {
        let loc = self.index.get(&key)?;
        let seg = &self.segments[loc.segment as usize];
        Some(seg.slice(loc.offset as usize + HEADER_BYTES, loc.len as usize))
    }

    /// Removes `key`, returning whether it was present.
    pub fn delete(&mut self, key: u64) -> bool {
        match self.index.remove(&key) {
            Some(old) => {
                self.live[old.segment as usize] -= HEADER_BYTES + old.len as usize;
                self.maybe_clean();
                true
            }
            None => false,
        }
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store has no live keys.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total bytes held by all segments (live + dead).
    pub fn total_bytes(&self) -> usize {
        self.segments.iter().map(Segment::len).sum()
    }

    /// Bytes referenced by the index (live entries only).
    pub fn live_bytes(&self) -> usize {
        self.live.iter().sum()
    }

    /// Memory utilisation: live / total (1.0 for an empty store).
    pub fn utilization(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            1.0
        } else {
            self.live_bytes() as f64 / total as f64
        }
    }

    /// How many cleaning passes have run.
    pub fn cleanings(&self) -> u64 {
        self.cleanings
    }

    /// Compacts sealed segments whose dead fraction exceeds the threshold by
    /// re-appending their live entries at the head.
    fn maybe_clean(&mut self) {
        let candidates: Vec<usize> = (0..self.segments.len() - 1)
            .filter(|&s| {
                let total = self.segments[s].len();
                if total == 0 {
                    return false;
                }
                matches!(self.segments[s], Segment::Sealed(_))
                    && (self.live[s] as f64 / total as f64) < (1.0 - self.clean_threshold)
            })
            .collect();
        if candidates.is_empty() {
            return;
        }
        for s in candidates {
            self.clean_segment(s);
        }
        self.cleanings += 1;
    }

    fn clean_segment(&mut self, s: usize) {
        let Segment::Sealed(data) = &self.segments[s] else {
            return;
        };
        // Walk the segment, collecting entries still referenced by the index.
        let data = data.clone();
        let mut survivors: Vec<(u64, Bytes)> = Vec::new();
        let mut cursor = 0usize;
        let mut view = data.clone();
        while view.remaining() >= HEADER_BYTES {
            let key = view.get_u64_le();
            let len = view.get_u32_le() as usize;
            if view.remaining() < len {
                break;
            }
            let value_off = cursor + HEADER_BYTES;
            let live_here = self
                .index
                .get(&key)
                .is_some_and(|loc| loc.segment as usize == s && loc.offset as usize == cursor);
            if live_here {
                survivors.push((key, data.slice(value_off..value_off + len)));
            }
            view.advance(len);
            cursor = value_off + len;
        }
        // Replace the segment with an empty sealed one, then re-append.
        self.segments[s] = Segment::Sealed(Bytes::new());
        self.live[s] = 0;
        for (key, value) in survivors {
            let loc = self.append(key, &value).expect("value fit before");
            self.live[loc.segment as usize] += HEADER_BYTES + value.len();
            self.index.insert(key, loc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut s = LogStore::default();
        s.put(1, b"hello").unwrap();
        s.put(2, b"world").unwrap();
        assert_eq!(s.get(1).unwrap().as_ref(), b"hello");
        assert_eq!(s.get(2).unwrap().as_ref(), b"world");
        assert_eq!(s.get(3), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn overwrite_returns_latest() {
        let mut s = LogStore::default();
        s.put(1, b"v1").unwrap();
        s.put(1, b"version-two").unwrap();
        assert_eq!(s.get(1).unwrap().as_ref(), b"version-two");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn delete_removes() {
        let mut s = LogStore::default();
        s.put(1, b"x").unwrap();
        assert!(s.delete(1));
        assert!(!s.delete(1));
        assert_eq!(s.get(1), None);
        assert!(s.is_empty());
    }

    #[test]
    fn rolls_segments() {
        let mut s = LogStore::new(64);
        for i in 0..32u64 {
            s.put(i, &[0u8; 20]).unwrap();
        }
        assert!(s.segments.len() > 1);
        for i in 0..32u64 {
            assert_eq!(s.get(i).unwrap().len(), 20);
        }
    }

    #[test]
    fn rejects_oversized_value() {
        let mut s = LogStore::new(64);
        let err = s.put(9, &[0u8; 100]).unwrap_err();
        assert!(matches!(err, StorageError::ValueTooLarge { key: 9, .. }));
    }

    #[test]
    fn cleaning_reclaims_dead_bytes() {
        let mut s = LogStore::new(256);
        // Fill several segments, then overwrite everything to kill the old
        // entries.
        for round in 0..8 {
            for i in 0..16u64 {
                let v = vec![round as u8; 32];
                s.put(i, &v).unwrap();
            }
        }
        assert!(s.cleanings() > 0, "cleaner never ran");
        // Data still correct after compaction.
        for i in 0..16u64 {
            assert_eq!(s.get(i).unwrap().as_ref(), &[7u8; 32][..]);
        }
        assert!(
            s.utilization() > 0.3,
            "utilization {} too low after cleaning",
            s.utilization()
        );
    }

    #[test]
    fn utilization_of_fresh_store() {
        let s = LogStore::default();
        assert_eq!(s.utilization(), 1.0);
        assert_eq!(s.total_bytes(), 0);
    }

    proptest::proptest! {
        /// The store behaves like a HashMap under arbitrary workloads.
        #[test]
        fn prop_matches_hashmap(ops in proptest::collection::vec(
            (0u8..3, 0u64..16, proptest::collection::vec(proptest::num::u8::ANY, 0..48)),
            1..200,
        )) {
            let mut store = LogStore::new(512);
            let mut model: std::collections::HashMap<u64, Vec<u8>> = std::collections::HashMap::new();
            for (op, key, value) in ops {
                match op {
                    0 => {
                        store.put(key, &value).unwrap();
                        model.insert(key, value);
                    }
                    1 => {
                        let a = store.delete(key);
                        let b = model.remove(&key).is_some();
                        proptest::prop_assert_eq!(a, b);
                    }
                    _ => {
                        let a = store.get(key).map(|b| b.to_vec());
                        let b = model.get(&key).cloned();
                        proptest::prop_assert_eq!(a, b);
                    }
                }
                proptest::prop_assert_eq!(store.len(), model.len());
                proptest::prop_assert!(store.live_bytes() <= store.total_bytes() + 1);
            }
            // Final full read-back.
            for (k, v) in model {
                proptest::prop_assert_eq!(store.get(k).unwrap().to_vec(), v);
            }
        }
    }
}
