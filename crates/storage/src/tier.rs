//! The storage tier: graph data horizontally partitioned across servers.

use std::sync::Arc;

use bytes::Bytes;
use grouting_graph::codec::AdjacencyRecord;
use grouting_graph::dynamic::{DynamicGraph, GraphUpdate};
use grouting_graph::{CsrGraph, NodeId};
use grouting_partition::Partitioner;

use crate::log::DEFAULT_SEGMENT_BYTES;
use crate::server::StorageServer;
use crate::Result;

/// The decoupled storage tier (paper Figure 2, bottom).
///
/// Holds `M` storage servers and a [`Partitioner`] that places each node's
/// adjacency record. gRouting uses [`grouting_partition::HashPartitioner`]
/// here — the whole point of smart routing is that this placement does not
/// need to be clever.
///
/// Optional chain replication (RAMCloud-style "continuous availability",
/// §4.1): with a replication factor `r`, each record also lives on the
/// `r − 1` servers following its primary, and reads fall over to a replica
/// when the primary is marked down.
pub struct StorageTier {
    servers: Vec<Arc<StorageServer>>,
    partitioner: Arc<dyn Partitioner>,
    replication: usize,
    up: Vec<std::sync::atomic::AtomicBool>,
}

impl std::fmt::Debug for StorageTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageTier")
            .field("servers", &self.servers.len())
            .field("parts", &self.partitioner.parts())
            .finish()
    }
}

impl StorageTier {
    /// Creates a tier whose server count matches `partitioner.parts()`.
    pub fn new(partitioner: Arc<dyn Partitioner>) -> Self {
        Self::with_segment_bytes(partitioner, DEFAULT_SEGMENT_BYTES)
    }

    /// Creates a tier with a custom per-server segment size.
    pub fn with_segment_bytes(partitioner: Arc<dyn Partitioner>, segment_bytes: usize) -> Self {
        Self::with_replication(partitioner, segment_bytes, 1)
    }

    /// Creates a tier with a replication factor (`1` = no replication).
    ///
    /// # Panics
    ///
    /// Panics if `replication == 0` or exceeds the server count.
    pub fn with_replication(
        partitioner: Arc<dyn Partitioner>,
        segment_bytes: usize,
        replication: usize,
    ) -> Self {
        let parts = partitioner.parts();
        assert!(replication >= 1, "replication factor must be at least 1");
        assert!(
            replication <= parts,
            "replication {replication} exceeds {parts} servers"
        );
        let servers = (0..parts)
            .map(|id| Arc::new(StorageServer::new(id, segment_bytes)))
            .collect();
        Self {
            servers,
            partitioner,
            replication,
            up: (0..parts)
                .map(|_| std::sync::atomic::AtomicBool::new(true))
                .collect(),
        }
    }

    /// The configured replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Marks a storage server as failed; reads fall over to replicas.
    pub fn mark_down(&self, server: usize) {
        self.up[server].store(false, std::sync::atomic::Ordering::Relaxed);
    }

    /// Brings a storage server back (its log is intact — in-memory
    /// restart, as in RAMCloud's fast recovery).
    pub fn mark_up(&self, server: usize) {
        self.up[server].store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether a server is currently serving.
    pub fn is_up(&self, server: usize) -> bool {
        self.up[server].load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The replica chain of `node`: its primary plus the following
    /// `replication − 1` servers.
    pub fn replica_chain(&self, node: NodeId) -> impl Iterator<Item = usize> + '_ {
        let home = self.partitioner.assign(node);
        let parts = self.servers.len();
        (0..self.replication).map(move |k| (home + k) % parts)
    }

    /// Number of storage servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// The partitioner placing records on servers. Query processors share
    /// this placement function (it is stateless metadata), which is how a
    /// remote fetch layer knows which storage endpoint owns a node.
    pub fn partitioner(&self) -> Arc<dyn Partitioner> {
        Arc::clone(&self.partitioner)
    }

    /// The server owning `node`.
    pub fn server_of(&self, node: NodeId) -> usize {
        self.partitioner.assign(node)
    }

    /// Direct handle to a server (for per-server stats).
    pub fn server(&self, id: usize) -> &Arc<StorageServer> {
        &self.servers[id]
    }

    /// Loads every node's adjacency record from an in-memory graph.
    ///
    /// # Errors
    ///
    /// Propagates storage errors (oversized records).
    pub fn load_graph(&self, g: &CsrGraph) -> Result<()> {
        for v in g.nodes() {
            let rec = AdjacencyRecord::from_graph(g, v).expect("node in range");
            self.put_record(v, &rec)?;
        }
        Ok(())
    }

    /// Fetches the raw adjacency value for `node` with the serving server
    /// id — the primary, or the first live replica when the primary is
    /// down.
    pub fn get(&self, node: NodeId) -> Option<(usize, Bytes)> {
        let chain: Vec<usize> = self.replica_chain(node).collect();
        for s in chain {
            if !self.is_up(s) {
                continue;
            }
            if let Some(b) = self.servers[s].get(node.raw() as u64) {
                return Some((s, b));
            }
        }
        None
    }

    /// Fetches the raw adjacency values for many nodes at once, one entry
    /// per requested node in order — the storage half of a frontier-batched
    /// fetch. A wire deployment serves this from one batch frame per
    /// server; the in-process tier answers it directly, so both paths share
    /// the same multi-get contract.
    pub fn get_many(&self, nodes: &[NodeId]) -> Vec<Option<(usize, Bytes)>> {
        nodes.iter().map(|&n| self.get(n)).collect()
    }

    /// Fetches and decodes the adjacency record for `node`.
    pub fn get_record(&self, node: NodeId) -> Option<(usize, AdjacencyRecord)> {
        let (s, bytes) = self.get(node)?;
        let rec = AdjacencyRecord::decode(bytes).expect("tier stores valid records");
        Some((s, rec))
    }

    /// Stores `record` as the value for `node` on its whole replica chain.
    ///
    /// # Errors
    ///
    /// Propagates storage errors (oversized records).
    pub fn put_record(&self, node: NodeId, record: &AdjacencyRecord) -> Result<()> {
        let encoded = record.encode();
        for s in self.replica_chain(node).collect::<Vec<_>>() {
            self.servers[s].put(node.raw() as u64, &encoded)?;
        }
        Ok(())
    }

    /// Deletes `node`'s record from its replica chain, returning whether
    /// the primary copy existed.
    pub fn delete(&self, node: NodeId) -> bool {
        let chain: Vec<usize> = self.replica_chain(node).collect();
        let mut existed = false;
        for (i, s) in chain.into_iter().enumerate() {
            let removed = self.servers[s].delete(node.raw() as u64);
            if i == 0 {
                existed = removed;
            }
        }
        existed
    }

    /// Applies one topology update by rewriting the affected records from
    /// the post-update dynamic graph (endpoints only — their neighbours'
    /// records mention them by id, which is unchanged).
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn apply_update(&self, g: &DynamicGraph, update: GraphUpdate) -> Result<()> {
        let rewrite = |node: NodeId| -> Result<()> {
            if g.contains(node) {
                let rec = AdjacencyRecord {
                    out: g.out_neighbors(node).collect(),
                    inc: g.in_neighbors(node).collect(),
                    ..Default::default()
                };
                self.put_record(node, &rec)?;
            } else {
                self.delete(node);
            }
            Ok(())
        };
        match update {
            GraphUpdate::AddNode(n) => rewrite(n)?,
            GraphUpdate::AddEdge(s, d) | GraphUpdate::RemoveEdge(s, d) => {
                rewrite(s)?;
                rewrite(d)?;
            }
            GraphUpdate::RemoveNode(n) => {
                // The stored record still holds the pre-removal adjacency;
                // rewrite those neighbours so they stop mentioning `n`.
                let old = self.get_record(n);
                rewrite(n)?;
                if let Some((_, rec)) = old {
                    let mut seen = std::collections::BTreeSet::new();
                    for v in rec.all_neighbors() {
                        if v != n && seen.insert(v) {
                            rewrite(v)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Live bytes stored per server — the balance check for Table 1-style
    /// loading.
    pub fn bytes_per_server(&self) -> Vec<usize> {
        self.servers.iter().map(|s| s.live_bytes()).collect()
    }

    /// Total get operations across servers.
    pub fn total_gets(&self) -> u64 {
        self.servers.iter().map(|s| s.gets_served()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_graph::GraphBuilder;
    use grouting_partition::HashPartitioner;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn tier_with_path(servers: usize) -> (StorageTier, CsrGraph) {
        let mut b = GraphBuilder::new();
        for i in 0..9 {
            b.add_edge(n(i), n(i + 1));
        }
        let g = b.build().unwrap();
        let tier = StorageTier::new(Arc::new(HashPartitioner::new(servers)));
        tier.load_graph(&g).unwrap();
        (tier, g)
    }

    #[test]
    fn load_and_fetch_records() {
        let (tier, g) = tier_with_path(3);
        assert_eq!(tier.server_count(), 3);
        for v in g.nodes() {
            let (s, rec) = tier.get_record(v).unwrap();
            assert_eq!(s, tier.server_of(v));
            assert_eq!(rec.out, g.out_neighbors(v).collect::<Vec<_>>());
            assert_eq!(rec.inc, g.in_neighbors(v).collect::<Vec<_>>());
        }
    }

    #[test]
    fn data_is_distributed() {
        let (tier, _) = tier_with_path(3);
        let bytes = tier.bytes_per_server();
        let populated = bytes.iter().filter(|&&b| b > 0).count();
        assert!(populated >= 2, "distribution {bytes:?}");
    }

    #[test]
    fn missing_node_is_none() {
        let (tier, _) = tier_with_path(2);
        assert!(tier.get(n(999)).is_none());
    }

    #[test]
    fn update_edge_rewrites_endpoints() {
        let (tier, g) = tier_with_path(2);
        let mut dynamic = DynamicGraph::from_csr(&g);
        dynamic.add_edge(n(0), n(5));
        tier.apply_update(&dynamic, GraphUpdate::AddEdge(n(0), n(5)))
            .unwrap();
        let (_, rec0) = tier.get_record(n(0)).unwrap();
        assert!(rec0.out.contains(&n(5)));
        let (_, rec5) = tier.get_record(n(5)).unwrap();
        assert!(rec5.inc.contains(&n(0)));
    }

    #[test]
    fn update_remove_node_deletes_record() {
        let (tier, g) = tier_with_path(2);
        let mut dynamic = DynamicGraph::from_csr(&g);
        dynamic.remove_node(n(4)).unwrap();
        tier.apply_update(&dynamic, GraphUpdate::RemoveNode(n(4)))
            .unwrap();
        assert!(tier.get(n(4)).is_none());
        // Neighbour records no longer mention node 4.
        let (_, rec3) = tier.get_record(n(3)).unwrap();
        assert!(!rec3.out.contains(&n(4)));
        let (_, rec5) = tier.get_record(n(5)).unwrap();
        assert!(!rec5.inc.contains(&n(4)));
    }

    #[test]
    fn replication_survives_primary_failure() {
        let mut b = GraphBuilder::new();
        for i in 0..9 {
            b.add_edge(n(i), n(i + 1));
        }
        let g = b.build().unwrap();
        let tier = StorageTier::with_replication(
            Arc::new(HashPartitioner::new(3)),
            crate::log::DEFAULT_SEGMENT_BYTES,
            2,
        );
        tier.load_graph(&g).unwrap();
        assert_eq!(tier.replication(), 2);

        // Kill every node's primary in turn; reads fall over to the backup.
        for v in g.nodes() {
            let primary = tier.server_of(v);
            tier.mark_down(primary);
            let (served_by, bytes) = tier.get(v).expect("replica serves");
            assert_ne!(served_by, primary);
            assert!(!bytes.is_empty());
            tier.mark_up(primary);
        }
    }

    #[test]
    fn unreplicated_tier_loses_data_on_failure() {
        let (tier, g) = tier_with_path(3);
        let v = g.nodes().next().unwrap();
        let primary = tier.server_of(v);
        tier.mark_down(primary);
        assert!(tier.get(v).is_none());
        tier.mark_up(primary);
        assert!(tier.get(v).is_some());
    }

    #[test]
    fn replication_doubles_stored_bytes() {
        let mut b = GraphBuilder::new();
        for i in 0..20 {
            b.add_edge(n(i), n((i + 1) % 21));
        }
        let g = b.build().unwrap();
        let single = StorageTier::new(Arc::new(HashPartitioner::new(4)));
        single.load_graph(&g).unwrap();
        let doubled = StorageTier::with_replication(
            Arc::new(HashPartitioner::new(4)),
            crate::log::DEFAULT_SEGMENT_BYTES,
            2,
        );
        doubled.load_graph(&g).unwrap();
        let s: usize = single.bytes_per_server().iter().sum();
        let d: usize = doubled.bytes_per_server().iter().sum();
        assert_eq!(d, 2 * s);
    }

    #[test]
    fn replicated_updates_reach_all_copies() {
        let mut b = GraphBuilder::new();
        b.add_edge(n(0), n(1));
        let g = b.build().unwrap();
        let tier = StorageTier::with_replication(
            Arc::new(HashPartitioner::new(2)),
            crate::log::DEFAULT_SEGMENT_BYTES,
            2,
        );
        tier.load_graph(&g).unwrap();
        let mut dynamic = DynamicGraph::from_csr(&g);
        dynamic.add_edge(n(0), n(2));
        tier.apply_update(&dynamic, GraphUpdate::AddEdge(n(0), n(2)))
            .unwrap();
        // The updated record is visible even with the primary down.
        let primary = tier.server_of(n(0));
        tier.mark_down(primary);
        let (_, rec) = tier.get_record(n(0)).unwrap();
        assert!(rec.out.contains(&n(2)));
    }

    #[test]
    #[should_panic(expected = "replication")]
    fn replication_cannot_exceed_servers() {
        let _ = StorageTier::with_replication(
            Arc::new(HashPartitioner::new(2)),
            crate::log::DEFAULT_SEGMENT_BYTES,
            3,
        );
    }

    #[test]
    fn gets_are_counted() {
        let (tier, _) = tier_with_path(2);
        let before = tier.total_gets();
        let _ = tier.get(n(0));
        let _ = tier.get(n(1));
        assert_eq!(tier.total_gets(), before + 2);
    }
}
