//! Network cost models for processor ↔ storage traffic.
//!
//! The paper runs over 40 Gbps Infiniband with RDMA ("a few microseconds";
//! RAMCloud get/put take 5–10 µs) and over 10 Gbps Ethernet for the
//! `gRouting-E` configuration. The simulator charges these models per
//! fetch; the live runtime can optionally spin for the same duration to
//! emulate the relative gap on a laptop.

/// Named network presets used by configs (`live`, `wire`, benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Preset {
    /// 40 Gbps Infiniband with RDMA (the paper's default).
    InfinibandRdma,
    /// 10 Gbps Ethernet (the paper's `gRouting-E`).
    Ethernet10G,
    /// Zero-cost network (single-machine control).
    #[default]
    Local,
}

/// Latency/bandwidth model for one request/response exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Fixed round-trip overhead per request, in nanoseconds.
    pub rtt_ns: u64,
    /// Payload throughput in bits per nanosecond (i.e. gigabits/second).
    pub gbps: f64,
}

impl NetworkModel {
    /// 40 Gbps Infiniband RDMA: ~6 µs per small get, matching RAMCloud's
    /// reported 5–10 µs.
    pub fn infiniband_rdma() -> Self {
        Self {
            rtt_ns: 6_000,
            gbps: 40.0,
        }
    }

    /// 10 Gbps kernel-stack Ethernet: ~30 µs request latency (in-rack
    /// datacenter RTT through the kernel stack).
    pub fn ethernet_10g() -> Self {
        Self {
            rtt_ns: 30_000,
            gbps: 10.0,
        }
    }

    /// Free network for single-machine controls.
    pub fn local() -> Self {
        Self {
            rtt_ns: 0,
            gbps: f64::INFINITY,
        }
    }

    /// Builds a model from a preset (alias for the [`From`] conversion).
    pub fn preset(p: Preset) -> Self {
        Self::from(p)
    }

    /// Whether this model charges any time at all.
    pub fn is_free(&self) -> bool {
        self.rtt_ns == 0 && !self.gbps.is_finite()
    }

    /// Nanoseconds to fetch a `bytes`-sized value: RTT plus serialisation
    /// time at the link bandwidth.
    pub fn fetch_ns(&self, bytes: usize) -> u64 {
        let transfer = if self.gbps.is_finite() && self.gbps > 0.0 {
            ((bytes as f64 * 8.0) / self.gbps).round() as u64
        } else {
            0
        };
        self.rtt_ns + transfer
    }
}

impl From<Preset> for NetworkModel {
    fn from(p: Preset) -> Self {
        match p {
            Preset::InfinibandRdma => Self::infiniband_rdma(),
            Preset::Ethernet10G => Self::ethernet_10g(),
            Preset::Local => Self::local(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdma_is_microseconds() {
        let m = NetworkModel::infiniband_rdma();
        let t = m.fetch_ns(64);
        assert!((5_000..12_000).contains(&t), "t={t}");
    }

    #[test]
    fn ethernet_is_much_slower_than_rdma() {
        let rdma = NetworkModel::infiniband_rdma();
        let eth = NetworkModel::ethernet_10g();
        assert!(eth.fetch_ns(64) >= 4 * rdma.fetch_ns(64));
    }

    #[test]
    fn bandwidth_term_scales_with_size() {
        let m = NetworkModel::infiniband_rdma();
        let small = m.fetch_ns(100);
        let big = m.fetch_ns(1_000_000);
        // 1 MB at 40 Gbps is 200 µs of serialisation.
        assert!(big > small + 150_000, "big={big} small={small}");
    }

    #[test]
    fn local_is_free() {
        let m = NetworkModel::local();
        assert_eq!(m.fetch_ns(1 << 20), 0);
    }

    #[test]
    fn presets_match_constructors() {
        assert_eq!(
            NetworkModel::from(Preset::InfinibandRdma),
            NetworkModel::infiniband_rdma()
        );
        assert_eq!(
            NetworkModel::from(Preset::Ethernet10G),
            NetworkModel::ethernet_10g()
        );
        assert_eq!(NetworkModel::preset(Preset::Local), NetworkModel::local());
        assert_eq!(Preset::default(), Preset::Local);
    }

    #[test]
    fn only_local_is_free() {
        assert!(NetworkModel::from(Preset::Local).is_free());
        assert!(!NetworkModel::from(Preset::InfinibandRdma).is_free());
        assert!(!NetworkModel::from(Preset::Ethernet10G).is_free());
    }
}
