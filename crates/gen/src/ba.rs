//! Barabási–Albert preferential-attachment generator.
//!
//! Each new node attaches `m` edges to existing nodes with probability
//! proportional to their current degree, via the standard repeated-endpoint
//! trick (every edge endpoint is pushed into a pool; uniform draws from the
//! pool are degree-proportional). Produces the heavy-tailed friendship
//! graphs used for the Friendster-like profile.

use grouting_graph::{CsrGraph, GraphBuilder, NodeId};
use rand::Rng;

use crate::rng;

/// Parameters for the BA generator.
#[derive(Debug, Clone, Copy)]
pub struct BaConfig {
    /// Total number of nodes.
    pub nodes: usize,
    /// Edges attached per new node.
    pub edges_per_node: usize,
}

/// Generates a Barabási–Albert graph; edges are directed new → old, which
/// matches a "follows" social graph and leaves both directions queryable via
/// the bi-directed storage model.
///
/// # Panics
///
/// Panics if `nodes == 0` or `edges_per_node == 0`.
pub fn generate(config: &BaConfig, seed: u64) -> CsrGraph {
    assert!(config.nodes > 0, "BA graph needs nodes");
    assert!(config.edges_per_node > 0, "BA graph needs edges_per_node");
    let m = config.edges_per_node;
    let mut r = rng(seed);
    let mut builder = GraphBuilder::with_nodes(config.nodes);
    builder.reserve_edges(config.nodes.saturating_mul(m));

    // Endpoint pool for degree-proportional sampling.
    let mut pool: Vec<u32> = Vec::with_capacity(2 * config.nodes * m);

    // Seed clique over the first min(m + 1, nodes) nodes.
    let seed_n = (m + 1).min(config.nodes);
    for i in 0..seed_n as u32 {
        for j in 0..i {
            builder.add_edge(NodeId::new(i), NodeId::new(j));
            pool.push(i);
            pool.push(j);
        }
    }

    for v in seed_n as u32..config.nodes as u32 {
        // BTreeSet keeps the endpoint-pool push order deterministic, which
        // keeps all subsequent degree-proportional draws deterministic.
        let mut chosen = std::collections::BTreeSet::new();
        let mut guard = 0;
        while chosen.len() < m && guard < 32 * m {
            guard += 1;
            let pick = if pool.is_empty() {
                r.gen_range(0..v)
            } else {
                pool[r.gen_range(0..pool.len())]
            };
            if pick != v {
                chosen.insert(pick);
            }
        }
        for &w in &chosen {
            builder.add_edge(NodeId::new(v), NodeId::new(w));
            pool.push(v);
            pool.push(w);
        }
    }
    builder.build().expect("node count fits u32")
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_graph::stats::GraphStats;

    #[test]
    fn shape_is_as_requested() {
        let g = generate(
            &BaConfig {
                nodes: 2_000,
                edges_per_node: 5,
            },
            11,
        );
        assert_eq!(g.node_count(), 2_000);
        // Seed clique has m(m+1)/2 edges; each later node adds exactly m.
        let expected = 5 * 6 / 2 + (2_000 - 6) * 5;
        assert_eq!(g.edge_count(), expected);
    }

    #[test]
    fn hubs_emerge() {
        let g = generate(
            &BaConfig {
                nodes: 3_000,
                edges_per_node: 4,
            },
            2,
        );
        let stats = GraphStats::compute(&g);
        assert!(
            stats.max_degree as f64 > 5.0 * stats.mean_degree,
            "max {} mean {}",
            stats.max_degree,
            stats.mean_degree
        );
    }

    #[test]
    fn deterministic() {
        let cfg = BaConfig {
            nodes: 500,
            edges_per_node: 3,
        };
        let a = generate(&cfg, 7);
        let b = generate(&cfg, 7);
        for v in a.nodes() {
            assert_eq!(a.out_slice(v), b.out_slice(v));
        }
    }

    #[test]
    fn small_graphs_degenerate_gracefully() {
        let g = generate(
            &BaConfig {
                nodes: 2,
                edges_per_node: 5,
            },
            0,
        );
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn no_self_loops() {
        let g = generate(
            &BaConfig {
                nodes: 800,
                edges_per_node: 3,
            },
            4,
        );
        for v in g.nodes() {
            assert!(!g.has_edge(v, v));
        }
    }
}
