//! R-MAT (recursive matrix) graph generator.
//!
//! The classic Chakrabarti–Zhan–Faloutsos model: each edge picks one of the
//! four adjacency-matrix quadrants with probabilities `(a, b, c, d)`
//! recursively until a single cell remains. With skewed quadrant weights the
//! result exhibits the power-law degree distribution of real web and social
//! graphs, which is the graph property the paper's routing results depend on.

use grouting_graph::{CsrGraph, GraphBuilder, NodeId};
use rand::Rng;

use crate::rng;

/// Parameters for the R-MAT generator.
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// log2 of the node count (the generated graph has `2^scale` nodes).
    pub scale: u32,
    /// Number of directed edges to draw (before dedup).
    pub edges: usize,
    /// Quadrant probability `a` (top-left; self-community).
    pub a: f64,
    /// Quadrant probability `b` (top-right).
    pub b: f64,
    /// Quadrant probability `c` (bottom-left).
    pub c: f64,
    /// Per-level multiplicative noise applied to the quadrant weights.
    pub noise: f64,
    /// Whether to drop self-loops.
    pub drop_self_loops: bool,
}

impl RmatConfig {
    /// The conventional web-graph parameterisation `(0.57, 0.19, 0.19, 0.05)`.
    pub fn web(scale: u32, edges: usize) -> Self {
        Self {
            scale,
            edges,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
            drop_self_loops: true,
        }
    }

    /// A milder skew used for the Memetracker-like profile.
    pub fn mild(scale: u32, edges: usize) -> Self {
        Self {
            a: 0.45,
            b: 0.22,
            c: 0.22,
            ..Self::web(scale, edges)
        }
    }

    /// Quadrant probability `d`, derived so the four sum to one.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates an R-MAT graph.
///
/// # Panics
///
/// Panics if the quadrant probabilities are invalid (negative `d`).
pub fn generate(config: &RmatConfig, seed: u64) -> CsrGraph {
    assert!(
        config.d() >= -1e-12,
        "quadrant probabilities exceed 1: a+b+c = {}",
        config.a + config.b + config.c
    );
    let n = 1usize << config.scale;
    let mut r = rng(seed);
    let mut b = GraphBuilder::with_nodes(n);
    b.reserve_edges(config.edges);
    for _ in 0..config.edges {
        let (src, dst) = sample_edge(config, &mut r);
        if config.drop_self_loops && src == dst {
            continue;
        }
        b.add_edge(NodeId::new(src), NodeId::new(dst));
    }
    b.build().expect("node count fits u32")
}

fn sample_edge<R: Rng>(config: &RmatConfig, r: &mut R) -> (u32, u32) {
    let mut x = 0u64;
    let mut y = 0u64;
    for level in (0..config.scale).rev() {
        // Multiplicative noise keeps degree sequences from being too regular
        // across levels, as recommended in the Graph500 reference.
        let jitter = |p: f64, r: &mut R| -> f64 {
            let eps = config.noise * (2.0 * r.gen::<f64>() - 1.0);
            (p * (1.0 + eps)).max(1e-9)
        };
        let a = jitter(config.a, r);
        let b = jitter(config.b, r);
        let c = jitter(config.c, r);
        let d = jitter(config.d().max(0.0), r);
        let total = a + b + c + d;
        let u: f64 = r.gen::<f64>() * total;
        let bit = 1u64 << level;
        if u < a {
            // Top-left: no bits set.
        } else if u < a + b {
            y |= bit;
        } else if u < a + b + c {
            x |= bit;
        } else {
            x |= bit;
            y |= bit;
        }
    }
    (x as u32, y as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_graph::stats::{powerlaw_alpha_mle, GraphStats};

    #[test]
    fn generates_requested_shape() {
        let g = generate(&RmatConfig::web(10, 8_000), 1);
        assert_eq!(g.node_count(), 1024);
        // Dedup and self-loop dropping lose a few edges but not most.
        assert!(g.edge_count() > 6_000, "edges = {}", g.edge_count());
        assert!(g.edge_count() <= 8_000);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&RmatConfig::web(8, 2_000), 9);
        let b = generate(&RmatConfig::web(8, 2_000), 9);
        assert_eq!(a.edge_count(), b.edge_count());
        let va: Vec<_> = a.out_neighbors(NodeId::new(3)).collect();
        let vb: Vec<_> = b.out_neighbors(NodeId::new(3)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&RmatConfig::web(8, 2_000), 1);
        let b = generate(&RmatConfig::web(8, 2_000), 2);
        let ea: Vec<_> = a.nodes().flat_map(|v| a.out_slice(v).to_vec()).collect();
        let eb: Vec<_> = b.nodes().flat_map(|v| b.out_slice(v).to_vec()).collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = generate(&RmatConfig::web(12, 40_000), 3);
        let stats = GraphStats::compute(&g);
        // A hub far above the mean indicates heavy-tailed degrees.
        assert!(
            stats.max_degree as f64 > 10.0 * stats.mean_degree,
            "max {} mean {}",
            stats.max_degree,
            stats.mean_degree
        );
        let alpha = powerlaw_alpha_mle(&g, 4).unwrap();
        assert!(alpha > 1.2 && alpha < 4.0, "alpha = {alpha}");
    }

    #[test]
    fn no_self_loops_when_dropped() {
        let g = generate(&RmatConfig::web(8, 4_000), 5);
        for v in g.nodes() {
            assert!(!g.has_edge(v, v));
        }
    }

    #[test]
    #[should_panic(expected = "quadrant probabilities")]
    fn rejects_invalid_probabilities() {
        let cfg = RmatConfig {
            a: 0.6,
            b: 0.3,
            c: 0.3,
            ..RmatConfig::web(4, 10)
        };
        let _ = generate(&cfg, 0);
    }
}
