//! Community-structured power-law generator.
//!
//! The routing results in the paper depend on *topology-aware locality*
//! (Figure 4): the 2-hop neighbourhoods of nearby nodes overlap strongly,
//! while those of distant nodes do not. Real web and social graphs get this
//! from community structure — pages cluster by host, users by social
//! circle. Pure preferential-attachment models do **not** have it (every
//! node's neighbourhood goes through the same global hubs), so dataset
//! profiles use this generator: nodes are grouped into id-contiguous
//! communities, each community is wired by preferential attachment (local
//! hubs, heavy-tailed degrees), and a small fraction of edges crosses
//! communities uniformly at random.

use grouting_graph::{CsrGraph, GraphBuilder, NodeId};
use rand::Rng;

use crate::rng;

/// Parameters for the community generator.
#[derive(Debug, Clone, Copy)]
pub struct CommunityConfig {
    /// Total number of nodes.
    pub nodes: usize,
    /// Nodes per community (the last community may be smaller).
    pub community_size: usize,
    /// Total directed edges to aim for.
    pub edges: usize,
    /// Fraction of edges that cross community boundaries.
    pub cross_fraction: f64,
    /// Of the cross edges, the fraction that jump to a uniformly random
    /// community; the rest connect communities *adjacent on the community
    /// ring*. This gives the metagraph small-world structure: graph
    /// diameters land in the 10–25 range of real web/social graphs instead
    /// of the ~5 of a uniformly-wired mixture, which is what gives hop
    /// distances (and hence landmarks and embeddings) usable dynamic range.
    pub shortcut_fraction: f64,
}

/// Generates a community-structured graph.
///
/// # Panics
///
/// Panics on a zero-sized configuration or `cross_fraction` outside
/// `[0, 1]`.
pub fn generate(config: &CommunityConfig, seed: u64) -> CsrGraph {
    assert!(config.nodes > 0, "zero nodes");
    assert!(config.community_size > 0, "zero community size");
    assert!(
        (0.0..=1.0).contains(&config.cross_fraction),
        "cross_fraction out of range"
    );
    let n = config.nodes;
    let size = config.community_size.min(n);
    let mut r = rng(seed);
    let mut b = GraphBuilder::with_nodes(n);
    b.reserve_edges(config.edges);

    let intra_budget = ((config.edges as f64) * (1.0 - config.cross_fraction)).round() as usize;
    let m = (intra_budget / n).max(1);

    // Preferential attachment inside each id-contiguous community.
    let mut start = 0usize;
    while start < n {
        let end = (start + size).min(n);
        wire_community(&mut b, start as u32, end as u32, m, &mut r);
        start = end;
    }

    // Cross-community edges for the remaining budget: mostly to ring-
    // adjacent communities, a few uniform shortcuts.
    let cross_budget = config.edges.saturating_sub(b.edge_count());
    let communities = n.div_ceil(size);
    if communities > 1 {
        assert!(
            (0.0..=1.0).contains(&config.shortcut_fraction),
            "shortcut_fraction out of range"
        );
        for _ in 0..cross_budget {
            let u = r.gen_range(0..n);
            let cu = u / size;
            let cv = if r.gen::<f64>() < config.shortcut_fraction {
                // Global shortcut: any other community.
                let mut c = r.gen_range(0..communities);
                if c == cu {
                    c = (c + 1) % communities;
                }
                c
            } else {
                // Ring-local: a community 1–2 steps away on the ring.
                let delta = r.gen_range(1..=2usize);
                if r.gen::<bool>() {
                    (cu + delta) % communities
                } else {
                    (cu + communities - (delta % communities)) % communities
                }
            };
            let lo = cv * size;
            let hi = ((cv + 1) * size).min(n);
            if lo >= hi {
                continue;
            }
            let v = r.gen_range(lo..hi);
            if u != v {
                b.add_edge(NodeId::new(u as u32), NodeId::new(v as u32));
            }
        }
    }
    b.build().expect("node count fits u32")
}

/// BA-style wiring over the node range `[start, end)`.
fn wire_community<R: Rng>(b: &mut GraphBuilder, start: u32, end: u32, m: usize, r: &mut R) {
    let len = (end - start) as usize;
    if len < 2 {
        return;
    }
    let m = m.min(len - 1);
    // Endpoint pool for degree-proportional target choice, local ids.
    let mut pool: Vec<u32> = Vec::with_capacity(2 * len * m);
    let seed_n = (m + 1).min(len);
    for i in 0..seed_n as u32 {
        for j in 0..i {
            b.add_edge(NodeId::new(start + i), NodeId::new(start + j));
            pool.push(i);
            pool.push(j);
        }
    }
    for v in seed_n as u32..len as u32 {
        let mut chosen = std::collections::BTreeSet::new();
        let mut guard = 0;
        while chosen.len() < m && guard < 16 * m {
            guard += 1;
            let pick = if pool.is_empty() {
                r.gen_range(0..v)
            } else {
                pool[r.gen_range(0..pool.len())]
            };
            if pick != v {
                chosen.insert(pick);
            }
        }
        for &w in &chosen {
            b.add_edge(NodeId::new(start + v), NodeId::new(start + w));
            pool.push(v);
            pool.push(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_graph::traversal::{bfs_within, Direction};

    fn overlap(a: &[NodeId], b: &[NodeId]) -> f64 {
        let sa: std::collections::HashSet<_> = a.iter().collect();
        let sb: std::collections::HashSet<_> = b.iter().collect();
        let inter = sa.intersection(&sb).count();
        inter as f64 / sa.len().min(sb.len()).max(1) as f64
    }

    fn ball(g: &CsrGraph, v: u32) -> Vec<NodeId> {
        bfs_within(g, NodeId::new(v), 2, Direction::Both)
            .into_iter()
            .map(|(w, _)| w)
            .collect()
    }

    #[test]
    fn shape_roughly_matches_request() {
        let g = generate(
            &CommunityConfig {
                nodes: 4000,
                community_size: 200,
                edges: 40_000,
                cross_fraction: 0.1,
                shortcut_fraction: 0.1,
            },
            1,
        );
        assert_eq!(g.node_count(), 4000);
        let e = g.edge_count();
        assert!(
            (30_000..=40_000).contains(&e),
            "edges {e} outside tolerance"
        );
    }

    #[test]
    fn topology_aware_locality_exists() {
        // The property the whole paper rests on: same-community (nearby)
        // nodes overlap heavily, distant nodes do not.
        let g = generate(
            &CommunityConfig {
                nodes: 4000,
                community_size: 200,
                edges: 40_000,
                cross_fraction: 0.08,
                shortcut_fraction: 0.1,
            },
            2,
        );
        let near = overlap(&ball(&g, 50), &ball(&g, 60)); // same community
        let far = overlap(&ball(&g, 50), &ball(&g, 2050)); // 10 communities away
        assert!(
            near > 3.0 * far,
            "near overlap {near:.3} vs far {far:.3} — locality too weak"
        );
        assert!(near > 0.3, "near overlap {near:.3} too small");
    }

    #[test]
    fn neighborhoods_are_community_sized() {
        let g = generate(
            &CommunityConfig {
                nodes: 8000,
                community_size: 200,
                edges: 80_000,
                cross_fraction: 0.1,
                shortcut_fraction: 0.1,
            },
            3,
        );
        let b = ball(&g, 1000);
        // A 2-hop ball should be around a community's worth of nodes, far
        // below the graph size.
        assert!(b.len() > 20, "ball {} too small", b.len());
        assert!(b.len() < 2000, "ball {} too global", b.len());
    }

    #[test]
    fn local_hubs_emerge() {
        let g = generate(
            &CommunityConfig {
                nodes: 2000,
                community_size: 100,
                edges: 20_000,
                cross_fraction: 0.05,
                shortcut_fraction: 0.1,
            },
            4,
        );
        // Hubs are local (bounded by community size), so the tail is
        // milder than global preferential attachment — but still present.
        let stats = grouting_graph::stats::GraphStats::compute(&g);
        assert!(
            stats.max_degree as f64 >= 2.5 * stats.mean_degree,
            "max {} mean {}",
            stats.max_degree,
            stats.mean_degree
        );
    }

    #[test]
    fn deterministic() {
        let cfg = CommunityConfig {
            nodes: 500,
            community_size: 50,
            edges: 4_000,
            cross_fraction: 0.1,
            shortcut_fraction: 0.1,
        };
        let a = generate(&cfg, 9);
        let b = generate(&cfg, 9);
        for v in a.nodes() {
            assert_eq!(a.out_slice(v), b.out_slice(v));
        }
    }

    #[test]
    fn single_community_degenerates_to_ba() {
        let g = generate(
            &CommunityConfig {
                nodes: 100,
                community_size: 1000,
                edges: 500,
                cross_fraction: 0.2,
                shortcut_fraction: 0.1,
            },
            5,
        );
        assert_eq!(g.node_count(), 100);
        assert!(g.edge_count() > 0);
    }
}
