//! Erdős–Rényi `G(n, m)` random graph generator.

use grouting_graph::{CsrGraph, GraphBuilder, NodeId};
use rand::Rng;

use crate::rng;

/// Generates a uniform random directed graph with `nodes` nodes and (up to)
/// `edges` distinct directed edges, no self-loops.
///
/// Used as the unclustered control case: routing locality gains should be
/// smallest here because nearby nodes share few neighbours.
///
/// # Panics
///
/// Panics if `nodes == 0` and `edges > 0`.
pub fn generate(nodes: usize, edges: usize, seed: u64) -> CsrGraph {
    assert!(nodes > 0 || edges == 0, "edges without nodes");
    let mut r = rng(seed);
    let mut b = GraphBuilder::with_nodes(nodes);
    b.reserve_edges(edges);
    let mut produced = 0usize;
    let mut attempts = 0usize;
    let max_attempts = edges.saturating_mul(4).max(16);
    while produced < edges && attempts < max_attempts {
        attempts += 1;
        let s = r.gen_range(0..nodes) as u32;
        let d = r.gen_range(0..nodes) as u32;
        if s == d {
            continue;
        }
        b.add_edge(NodeId::new(s), NodeId::new(d));
        produced += 1;
    }
    b.build().expect("node count fits u32")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let g = generate(1000, 5000, 3);
        assert_eq!(g.node_count(), 1000);
        assert!(g.edge_count() > 4_500, "dedup removes few on sparse graphs");
        assert!(g.edge_count() <= 5_000);
    }

    #[test]
    fn empty_graph() {
        let g = generate(10, 0, 0);
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn no_self_loops() {
        let g = generate(50, 500, 8);
        for v in g.nodes() {
            assert!(!g.has_edge(v, v));
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(100, 300, 5);
        let b = generate(100, 300, 5);
        for v in a.nodes() {
            assert_eq!(a.out_slice(v), b.out_slice(v));
        }
    }
}
