//! Label assignment for knowledge-graph-style workloads.
//!
//! The Freebase-like profile needs node labels (entity types) and edge
//! labels (relation types) so that label-constrained queries (§2.2) have
//! something to filter on. Labels are drawn from Zipf distributions because
//! real type/relation frequencies are heavily skewed.

use grouting_graph::{CsrGraph, EdgeLabelId, GraphBuilder, NodeId, NodeLabelId};
use rand::Rng;

use crate::rng;
use crate::zipf::Zipf;

/// Configuration for label assignment.
#[derive(Debug, Clone, Copy)]
pub struct LabelConfig {
    /// Number of distinct node labels (entity types).
    pub node_alphabet: u16,
    /// Number of distinct edge labels (relation types); label 0 is reserved
    /// for "unlabelled" so generated labels start at 1.
    pub edge_alphabet: u16,
    /// Zipf exponent for both alphabets.
    pub skew: f64,
}

impl Default for LabelConfig {
    fn default() -> Self {
        Self {
            node_alphabet: 32,
            edge_alphabet: 16,
            skew: 1.0,
        }
    }
}

/// Rebuilds `g` with Zipf-assigned node and edge labels.
///
/// # Panics
///
/// Panics if either alphabet is zero.
pub fn assign_labels(g: &CsrGraph, config: &LabelConfig, seed: u64) -> CsrGraph {
    assert!(config.node_alphabet > 0, "empty node alphabet");
    assert!(config.edge_alphabet > 0, "empty edge alphabet");
    let mut r = rng(seed);
    let node_z = Zipf::new(config.node_alphabet as usize, config.skew);
    let edge_z = Zipf::new(config.edge_alphabet as usize, config.skew);
    let mut b = GraphBuilder::with_nodes(g.node_count());
    for v in g.nodes() {
        b.set_node_label(v, NodeLabelId::new(node_z.sample(&mut r) as u16));
        for w in g.out_neighbors(v) {
            // Edge labels start at 1; 0 means unlabelled.
            let l = edge_z.sample(&mut r) as u16 + 1;
            b.add_labeled_edge(v, w, EdgeLabelId::new(l.min(config.edge_alphabet)));
        }
    }
    b.build().expect("same node count as input")
}

/// Counts nodes per label, for workload construction and tests.
pub fn label_histogram(g: &CsrGraph) -> Vec<(NodeLabelId, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for v in g.nodes() {
        if let Some(l) = g.node_label(v) {
            *counts.entry(l).or_insert(0usize) += 1;
        }
    }
    counts.into_iter().collect()
}

/// Picks a node carrying `label`, scanning from a seeded random offset.
pub fn any_node_with_label(g: &CsrGraph, label: NodeLabelId, seed: u64) -> Option<NodeId> {
    let n = g.node_count();
    if n == 0 {
        return None;
    }
    let start = rng(seed).gen_range(0..n);
    (0..n)
        .map(|i| NodeId::new(((start + i) % n) as u32))
        .find(|&v| g.node_label(v) == Some(label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::er;

    #[test]
    fn labels_cover_graph() {
        let g = er::generate(500, 2000, 1);
        let lg = assign_labels(&g, &LabelConfig::default(), 2);
        assert_eq!(lg.node_count(), g.node_count());
        assert_eq!(lg.edge_count(), g.edge_count());
        assert!(lg.has_node_labels());
        let hist = label_histogram(&lg);
        let total: usize = hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn labels_are_skewed() {
        let g = er::generate(2000, 4000, 3);
        let lg = assign_labels(
            &g,
            &LabelConfig {
                node_alphabet: 16,
                edge_alphabet: 8,
                skew: 1.2,
            },
            4,
        );
        let hist = label_histogram(&lg);
        let max = hist.iter().map(|&(_, c)| c).max().unwrap();
        let min = hist.iter().map(|&(_, c)| c).min().unwrap();
        assert!(max > 4 * min.max(1), "max {max} min {min}");
    }

    #[test]
    fn edge_labels_start_at_one() {
        let g = er::generate(100, 400, 5);
        let lg = assign_labels(&g, &LabelConfig::default(), 6);
        for v in lg.nodes() {
            for (_, l) in lg.out_edges(v) {
                assert!(l.0 >= 1);
            }
        }
    }

    #[test]
    fn find_node_with_label() {
        let g = er::generate(200, 600, 7);
        let lg = assign_labels(&g, &LabelConfig::default(), 8);
        let hist = label_histogram(&lg);
        let (label, _) = hist[0];
        let found = any_node_with_label(&lg, label, 9).unwrap();
        assert_eq!(lg.node_label(found), Some(label));
        assert_eq!(any_node_with_label(&lg, NodeLabelId::new(9999), 1), None);
    }
}
