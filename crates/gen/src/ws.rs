//! Watts–Strogatz small-world generator.
//!
//! Starts from a ring lattice where every node connects to its `k` nearest
//! clockwise neighbours, then rewires each edge's target with probability
//! `beta`. Low `beta` yields high clustering with short paths — the regime
//! where *topology-aware locality* (Figure 4 of the paper) is strongest,
//! making this the best-case generator for smart routing tests.

use grouting_graph::{CsrGraph, GraphBuilder, NodeId};
use rand::Rng;

use crate::rng;

/// Parameters for the Watts–Strogatz generator.
#[derive(Debug, Clone, Copy)]
pub struct WsConfig {
    /// Number of nodes on the ring.
    pub nodes: usize,
    /// Clockwise nearest neighbours each node connects to.
    pub k: usize,
    /// Rewiring probability in `[0, 1]`.
    pub beta: f64,
}

/// Generates a Watts–Strogatz graph.
///
/// # Panics
///
/// Panics if `beta` is outside `[0, 1]` or `k >= nodes`.
pub fn generate(config: &WsConfig, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&config.beta), "beta out of range");
    assert!(
        config.nodes == 0 || config.k < config.nodes,
        "k must be below node count"
    );
    let n = config.nodes;
    let mut r = rng(seed);
    let mut b = GraphBuilder::with_nodes(n);
    if n == 0 {
        return b.build().expect("empty graph");
    }
    for v in 0..n {
        for step in 1..=config.k {
            let mut w = (v + step) % n;
            if r.gen::<f64>() < config.beta {
                // Rewire to a uniform non-self target.
                let mut guard = 0;
                loop {
                    let cand = r.gen_range(0..n);
                    if cand != v || guard > 8 {
                        w = cand;
                        break;
                    }
                    guard += 1;
                }
            }
            if w != v {
                b.add_edge(NodeId::new(v as u32), NodeId::new(w as u32));
            }
        }
    }
    b.build().expect("node count fits u32")
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_graph::traversal::{bfs_within, Direction};

    #[test]
    fn lattice_when_beta_zero() {
        let g = generate(
            &WsConfig {
                nodes: 12,
                k: 2,
                beta: 0.0,
            },
            0,
        );
        assert_eq!(g.edge_count(), 24);
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(g.has_edge(NodeId::new(11), NodeId::new(0)));
    }

    #[test]
    fn neighbors_overlap_in_lattice() {
        // The defining property for topology-aware locality: adjacent nodes
        // share most of their 2-hop neighbourhoods.
        let g = generate(
            &WsConfig {
                nodes: 100,
                k: 3,
                beta: 0.0,
            },
            0,
        );
        let a: std::collections::HashSet<_> = bfs_within(&g, NodeId::new(10), 2, Direction::Both)
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        let b: std::collections::HashSet<_> = bfs_within(&g, NodeId::new(11), 2, Direction::Both)
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        let overlap = a.intersection(&b).count() as f64 / a.len().max(1) as f64;
        assert!(overlap > 0.5, "overlap = {overlap}");
    }

    #[test]
    fn rewiring_changes_edges() {
        let lattice = generate(
            &WsConfig {
                nodes: 200,
                k: 2,
                beta: 0.0,
            },
            5,
        );
        let rewired = generate(
            &WsConfig {
                nodes: 200,
                k: 2,
                beta: 0.5,
            },
            5,
        );
        let el: Vec<_> = lattice
            .nodes()
            .flat_map(|v| lattice.out_slice(v).to_vec())
            .collect();
        let er: Vec<_> = rewired
            .nodes()
            .flat_map(|v| rewired.out_slice(v).to_vec())
            .collect();
        assert_ne!(el, er);
    }

    #[test]
    fn empty_config() {
        let g = generate(
            &WsConfig {
                nodes: 0,
                k: 0,
                beta: 0.0,
            },
            0,
        );
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    #[should_panic(expected = "beta out of range")]
    fn rejects_bad_beta() {
        let _ = generate(
            &WsConfig {
                nodes: 10,
                k: 2,
                beta: 1.5,
            },
            0,
        );
    }
}
