//! Bounded Zipf distribution sampler.

use rand::Rng;

/// Samples ranks `0..n` with probability proportional to `1/(rank+1)^s`.
///
/// Implemented with a precomputed cumulative table and binary search, which
/// is exact, O(n) memory, and O(log n) per draw — ample for the workload and
/// label generators where `n` is at most the node count.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite and non-negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero ranks");
        assert!(s.is_finite() && s >= 0.0, "bad Zipf exponent {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the top end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the domain is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(100), 0.0);
    }

    #[test]
    fn skew_prefers_low_ranks() {
        let z = Zipf::new(1000, 1.2);
        let mut r = rng(42);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > 20_000 / 100, "rank 0 should be common");
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(7, 2.0);
        let mut r = rng(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut r) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "Zipf over zero ranks")]
    fn rejects_empty_domain() {
        let _ = Zipf::new(0, 1.0);
    }

    proptest::proptest! {
        #[test]
        fn prop_samples_in_range(n in 1usize..500, s in 0.0f64..3.0, seed in 0u64..1000) {
            let z = Zipf::new(n, s);
            let mut r = rng(seed);
            for _ in 0..50 {
                proptest::prop_assert!(z.sample(&mut r) < n);
            }
        }
    }
}
