//! Synthetic graph generators and dataset profiles.
//!
//! The paper evaluates on four real graphs (Table 1) that are not shipped
//! with this reproduction, so [`profiles`] provides scaled synthetic
//! stand-ins whose node:edge ratio and degree skew match each dataset (see
//! DESIGN.md §1 for the substitution argument). The generator family:
//!
//! * [`rmat`] — recursive-matrix (R-MAT) graphs, the standard power-law web
//!   graph model;
//! * [`ba`] — Barabási–Albert preferential attachment, the standard social
//!   network model;
//! * [`er`] — Erdős–Rényi `G(n, m)` random graphs (control case);
//! * [`ws`] — Watts–Strogatz small-world graphs (high local clustering);
//! * [`zipf`] — a bounded Zipf sampler used for skewed label/workload draws;
//! * [`labels`] — node/edge label assignment for knowledge-graph workloads.
//!
//! Every generator is deterministic given a `u64` seed.

pub mod ba;
pub mod community;
pub mod er;
pub mod labels;
pub mod profiles;
pub mod rmat;
pub mod ws;
pub mod zipf;

pub use profiles::{DatasetProfile, ProfileName};
pub use zipf::Zipf;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates the deterministic RNG used by all generators.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng(7);
        let mut b = rng(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn rng_differs_by_seed() {
        let mut a = rng(1);
        let mut b = rng(2);
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }
}
