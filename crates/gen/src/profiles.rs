//! Scaled synthetic stand-ins for the paper's four datasets (Table 1).
//!
//! | Dataset     | Paper nodes | Paper edges | Model here |
//! |-------------|-------------|-------------|------------|
//! | WebGraph    | 105.9 M     | 3.74 B      | community power-law (host-clustered web) |
//! | Friendster  | 65.6 M      | 1.81 B      | community power-law (social circles, more cross edges) |
//! | Memetracker | 96.6 M      | 418 M       | community power-law (sparser, looser) |
//! | Freebase    | 49.7 M      | 46.7 M      | Erdős–Rényi + Zipf labels |
//!
//! The first three use [`crate::community`]: real web/social graphs derive
//! their *topology-aware locality* (paper Figure 4) from community
//! structure, which pure preferential-attachment or R-MAT models lack at
//! reduced scale (their 2-hop neighbourhoods all collapse onto the same
//! global hubs, making routing irrelevant — the opposite of the measured
//! behaviour on the real datasets). Community sizes differ per dataset:
//! tight host-like clusters for WebGraph, larger and leakier circles for
//! Friendster, loose clusters for Memetracker.
//!
//! The default scale is 1/1000 of the paper's sizes (≈ 50 k–106 k nodes),
//! controllable with the `GROUTING_SCALE` environment variable (e.g. `2.0`
//! doubles every profile). Ratios between node and edge counts — the
//! property the routing experiments are sensitive to — are preserved at all
//! scales.

use grouting_graph::CsrGraph;

use crate::community::{self, CommunityConfig};
use crate::er;
use crate::labels::{self, LabelConfig};

/// The four datasets of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfileName {
    /// uk-2007-05 web crawl: huge, strongly clustered, power-law.
    WebGraph,
    /// Friendster social network: dense friendship graph, large 2-hop sizes.
    Friendster,
    /// Memetracker quote/phrase graph: sparse document graph.
    Memetracker,
    /// Freebase knowledge graph: very sparse, labelled.
    Freebase,
}

impl ProfileName {
    /// All four profiles in the paper's Table 1 order.
    pub const ALL: [ProfileName; 4] = [
        ProfileName::WebGraph,
        ProfileName::Friendster,
        ProfileName::Memetracker,
        ProfileName::Freebase,
    ];

    /// Human-readable dataset name as printed in the paper.
    pub fn as_str(&self) -> &'static str {
        match self {
            ProfileName::WebGraph => "WebGraph",
            ProfileName::Friendster => "Friendster",
            ProfileName::Memetracker => "Memetracker",
            ProfileName::Freebase => "Freebase",
        }
    }

    /// Paper-reported node count (Table 1).
    pub fn paper_nodes(&self) -> u64 {
        match self {
            ProfileName::WebGraph => 105_896_555,
            ProfileName::Friendster => 65_608_366,
            ProfileName::Memetracker => 96_608_034,
            ProfileName::Freebase => 49_731_389,
        }
    }

    /// Paper-reported edge count (Table 1).
    pub fn paper_edges(&self) -> u64 {
        match self {
            ProfileName::WebGraph => 3_738_733_648,
            ProfileName::Friendster => 1_806_067_135,
            ProfileName::Memetracker => 418_237_269,
            ProfileName::Freebase => 46_708_421,
        }
    }

    /// Paper-reported on-disk adjacency size (Table 1), in bytes.
    pub fn paper_bytes(&self) -> u64 {
        match self {
            ProfileName::WebGraph => (60.3 * (1u64 << 30) as f64) as u64,
            ProfileName::Friendster => (33.5 * (1u64 << 30) as f64) as u64,
            ProfileName::Memetracker => (8.2 * (1u64 << 30) as f64) as u64,
            ProfileName::Freebase => (1.3 * (1u64 << 30) as f64) as u64,
        }
    }
}

/// A concrete, scaled dataset profile ready to generate.
#[derive(Debug, Clone, Copy)]
pub struct DatasetProfile {
    /// Which dataset this imitates.
    pub name: ProfileName,
    /// Scaled node count.
    pub nodes: usize,
    /// Scaled edge count.
    pub edges: usize,
    /// Generation seed (distinct per dataset so runs differ across sets).
    pub seed: u64,
}

/// Base denominator: profiles default to 1/1000 of the paper's sizes.
const BASE_DIVISOR: f64 = 1000.0;

impl DatasetProfile {
    /// Creates the profile at an explicit scale multiplier (1.0 = 1/1000 of
    /// the paper's size).
    pub fn at_scale(name: ProfileName, scale: f64) -> Self {
        assert!(scale > 0.0 && scale.is_finite(), "bad scale {scale}");
        let nodes = ((name.paper_nodes() as f64) * scale / BASE_DIVISOR).round() as usize;
        let edges = ((name.paper_edges() as f64) * scale / BASE_DIVISOR).round() as usize;
        Self {
            name,
            nodes: nodes.max(64),
            edges: edges.max(64),
            seed: 0xC0FFEE ^ name.paper_nodes(),
        }
    }

    /// Creates the profile honouring the `GROUTING_SCALE` environment
    /// variable (default 1.0).
    pub fn from_env(name: ProfileName) -> Self {
        Self::at_scale(name, env_scale())
    }

    /// A deliberately tiny profile for unit/integration tests.
    pub fn tiny(name: ProfileName) -> Self {
        Self::at_scale(name, 0.02)
    }

    /// Generates the graph for this profile.
    pub fn generate(&self) -> CsrGraph {
        match self.name {
            ProfileName::WebGraph => community::generate(
                &CommunityConfig {
                    nodes: self.nodes,
                    // Host-like clusters: tight, few cross-host links.
                    community_size: 150.min(self.nodes / 4).max(8),
                    edges: self.edges,
                    cross_fraction: 0.03,
                    shortcut_fraction: 0.0001,
                },
                self.seed,
            ),
            ProfileName::Friendster => community::generate(
                &CommunityConfig {
                    nodes: self.nodes,
                    // Social circles: larger and leakier, giving the larger
                    // 2-hop neighbourhoods the paper reports (§4.8).
                    community_size: 400.min(self.nodes / 4).max(8),
                    edges: self.edges,
                    cross_fraction: 0.06,
                    shortcut_fraction: 0.0001,
                },
                self.seed,
            ),
            ProfileName::Memetracker => community::generate(
                &CommunityConfig {
                    nodes: self.nodes,
                    community_size: 250.min(self.nodes / 4).max(8),
                    edges: self.edges,
                    cross_fraction: 0.08,
                    shortcut_fraction: 0.0001,
                },
                self.seed,
            ),
            ProfileName::Freebase => {
                let g = er::generate(self.nodes, self.edges, self.seed);
                labels::assign_labels(&g, &LabelConfig::default(), self.seed ^ 0x51)
            }
        }
    }
}

/// Reads `GROUTING_SCALE` (default 1.0). An invalid value — unparsable,
/// non-positive, or non-finite — is *reported* with one stderr line
/// naming it, rather than silently treated as 1.0.
pub fn env_scale() -> f64 {
    match std::env::var("GROUTING_SCALE") {
        Err(_) => 1.0,
        Ok(raw) => match raw.parse::<f64>() {
            Ok(s) if s > 0.0 && s.is_finite() => s,
            _ => {
                grouting_metrics::log_warn!(
                    "invalid GROUTING_SCALE value {raw:?} \
                     (expected a positive finite number); using 1.0"
                );
                1.0
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_preserved() {
        for name in ProfileName::ALL {
            let p = DatasetProfile::at_scale(name, 1.0);
            let paper_ratio = name.paper_edges() as f64 / name.paper_nodes() as f64;
            let scaled_ratio = p.edges as f64 / p.nodes as f64;
            assert!(
                (paper_ratio - scaled_ratio).abs() / paper_ratio < 0.01,
                "{name:?}: {paper_ratio} vs {scaled_ratio}"
            );
        }
    }

    #[test]
    fn tiny_profiles_generate_quickly() {
        for name in ProfileName::ALL {
            let p = DatasetProfile::tiny(name);
            let g = p.generate();
            assert!(g.node_count() > 0, "{name:?}");
            assert!(g.edge_count() > 0, "{name:?}");
        }
    }

    #[test]
    fn freebase_profile_is_labeled() {
        let g = DatasetProfile::tiny(ProfileName::Freebase).generate();
        assert!(g.has_node_labels());
    }

    #[test]
    fn webgraph_is_largest() {
        let web = DatasetProfile::at_scale(ProfileName::WebGraph, 1.0);
        let free = DatasetProfile::at_scale(ProfileName::Freebase, 1.0);
        assert!(web.edges > 50 * free.edges);
    }

    #[test]
    fn generation_is_deterministic() {
        let p = DatasetProfile::tiny(ProfileName::Memetracker);
        let a = p.generate();
        let b = p.generate();
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    #[should_panic(expected = "bad scale")]
    fn rejects_zero_scale() {
        let _ = DatasetProfile::at_scale(ProfileName::WebGraph, 0.0);
    }
}
