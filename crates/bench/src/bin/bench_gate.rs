//! Perf-regression gate over `BENCH_results.json` files.
//!
//! Compares a fresh bench-results file (written by the criterion shim when
//! `GROUTING_BENCH_JSON` is set) against a checked-in baseline and fails
//! when any selected benchmark regressed beyond the allowed factor:
//!
//! ```bash
//! GROUTING_BENCH_JSON=BENCH_results.json cargo bench --bench micro -- reactor_dispatch_latency
//! cargo run -p grouting-bench --bin bench_gate -- \
//!     crates/bench/BENCH_baseline.json BENCH_results.json reactor_dispatch_latency 2.0
//! ```
//!
//! The baseline is intentionally coarse (medians from one reference
//! machine) and the factor generous (CI hardware varies); the gate exists
//! to catch order-of-magnitude regressions — a reactor accidentally
//! sleeping per dispatch — not 10% noise.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Parses the flat `{"name": number, …}` JSON the bench shim emits. A
/// hand-rolled scanner is enough: keys are bench names (no nested
/// structure, no escapes in practice), values are plain numbers.
fn parse_results(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let mut rest = text;
    while let Some(start) = rest.find('"') {
        rest = &rest[start + 1..];
        let Some(end) = rest.find('"') else { break };
        let key = rest[..end].to_string();
        rest = &rest[end + 1..];
        let Some(colon) = rest.find(':') else { break };
        rest = &rest[colon + 1..];
        let value: String = rest
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
            .collect();
        if let Ok(v) = value.parse::<f64>() {
            out.insert(key, v);
        }
    }
    out
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The gate's verdict over one baseline/results pair.
#[derive(Debug, PartialEq, Eq)]
struct GateOutcome {
    /// Benchmarks compared against the baseline.
    checked: usize,
    /// Regressions past the factor PLUS baseline keys absent from the
    /// results — a renamed or dropped bench *fails* the gate rather than
    /// silently shrinking its coverage.
    failed: usize,
}

impl GateOutcome {
    fn passed(&self) -> bool {
        self.checked > 0 && self.failed == 0
    }
}

/// Compares every baseline entry under `prefix` against `results`,
/// printing one verdict line per benchmark. A baseline key missing from
/// the results counts as a failure (reported as `MISSING`), so the gate
/// cannot be dodged by renaming a bench.
fn run_gate(
    baseline: &BTreeMap<String, f64>,
    results: &BTreeMap<String, f64>,
    prefix: &str,
    factor: f64,
) -> GateOutcome {
    let mut outcome = GateOutcome {
        checked: 0,
        failed: 0,
    };
    for (name, &base) in baseline.iter().filter(|(n, _)| n.starts_with(prefix)) {
        let Some(&fresh) = results.get(name) else {
            eprintln!("MISSING  {name}: in baseline but not in results");
            outcome.failed += 1;
            continue;
        };
        outcome.checked += 1;
        let ratio = fresh / base;
        let verdict = if ratio > factor { "REGRESSED" } else { "ok" };
        println!(
            "{verdict:>9}  {name}: {} vs baseline {} ({ratio:.2}x, limit {factor:.2}x)",
            human(fresh),
            human(base),
        );
        if ratio > factor {
            outcome.failed += 1;
        }
    }
    outcome
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, results_path, prefix, factor] = &args[..] else {
        eprintln!("usage: bench_gate <baseline.json> <results.json> <name-prefix> <max-ratio>");
        return ExitCode::FAILURE;
    };
    let factor: f64 = match factor.parse() {
        Ok(f) if f > 0.0 => f,
        _ => {
            eprintln!("max-ratio must be a positive number, got {factor}");
            return ExitCode::FAILURE;
        }
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(parse_results(&text)),
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(results)) = (read(baseline_path), read(results_path)) else {
        return ExitCode::FAILURE;
    };

    let outcome = run_gate(&baseline, &results, prefix, factor);
    if outcome.checked == 0 && outcome.failed == 0 {
        eprintln!("no baseline entries match prefix {prefix:?} — gate would be vacuous");
        return ExitCode::FAILURE;
    }
    if !outcome.passed() {
        eprintln!(
            "{} benchmark(s) regressed beyond {factor:.2}x or went missing",
            outcome.failed
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench gate passed: {} benchmark(s) within {factor:.2}x of baseline",
        outcome.checked
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shim_format() {
        let text = "{\n  \"a/b\": 1200.5,\n  \"c/d\": 7\n}\n";
        let map = parse_results(text);
        assert_eq!(map.len(), 2);
        assert_eq!(map["a/b"], 1200.5);
        assert_eq!(map["c/d"], 7.0);
    }

    #[test]
    fn human_units() {
        assert_eq!(human(500.0), "500 ns");
        assert_eq!(human(1500.0), "1.50 µs");
        assert_eq!(human(2.5e6), "2.50 ms");
        assert_eq!(human(3.0e9), "3.00 s");
    }

    fn map(entries: &[(&str, f64)]) -> BTreeMap<String, f64> {
        entries.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn gate_passes_within_factor() {
        let baseline = map(&[("g/a", 100.0), ("g/b", 200.0), ("other/c", 1.0)]);
        let results = map(&[("g/a", 150.0), ("g/b", 100.0), ("other/c", 99.0)]);
        let out = run_gate(&baseline, &results, "g/", 2.0);
        assert_eq!(
            out,
            GateOutcome {
                checked: 2,
                failed: 0
            }
        );
        assert!(out.passed(), "other/c is outside the prefix");
    }

    #[test]
    fn gate_fails_on_regression() {
        let baseline = map(&[("g/a", 100.0)]);
        let results = map(&[("g/a", 300.0)]);
        let out = run_gate(&baseline, &results, "g/", 2.0);
        assert_eq!(
            out,
            GateOutcome {
                checked: 1,
                failed: 1
            }
        );
        assert!(!out.passed());
    }

    #[test]
    fn gate_fails_when_a_baseline_key_is_missing_from_results() {
        // A renamed bench must not dodge the regression check: the key
        // present in the baseline but absent from the fresh results is a
        // failure, not a skip.
        let baseline = map(&[("g/a", 100.0), ("g/renamed", 50.0)]);
        let results = map(&[("g/a", 100.0), ("g/new_name", 50.0)]);
        let out = run_gate(&baseline, &results, "g/", 2.0);
        assert_eq!(out.checked, 1);
        assert_eq!(out.failed, 1, "missing key counts as failure");
        assert!(!out.passed());
    }

    #[test]
    fn gate_with_no_matching_prefix_is_vacuous_not_passing() {
        let baseline = map(&[("g/a", 100.0)]);
        let results = map(&[("g/a", 100.0)]);
        let out = run_gate(&baseline, &results, "nope/", 2.0);
        assert_eq!(
            out,
            GateOutcome {
                checked: 0,
                failed: 0
            }
        );
        assert!(!out.passed());
    }
}
