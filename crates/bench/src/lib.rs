//! Shared plumbing for the experiment benches.
//!
//! Every table and figure of the paper's evaluation has a bench target in
//! `benches/` (`harness = false`) that regenerates its rows/series; this
//! library holds the pieces they share: profile construction at the bench
//! scale, the paper's standard workload, and preconfigured cluster assets.
//!
//! Scale: benches default to `GROUTING_SCALE=1` (≈ 1/1000 of the paper's
//! graph sizes, 50 k–106 k nodes). Set the environment variable to trade
//! runtime for fidelity.

use std::sync::Arc;

use grouting_core::gen::{DatasetProfile, ProfileName};
use grouting_core::prelude::*;
use grouting_core::query::Query;
use grouting_core::sim::{SimAssets, SimConfig};
use grouting_core::workload::{hotspot_workload, QueryMix, WorkloadConfig};

/// The paper's default cluster shape: 1 router, 7 processors, 4 storage.
pub const PAPER_PROCESSORS: usize = 7;
/// Storage servers in the paper's default deployment.
pub const PAPER_STORAGE: usize = 4;
/// Queries per experiment (100 hotspots × 10).
pub const PAPER_HOTSPOTS: usize = 100;
/// Queries per hotspot.
pub const PAPER_PER_HOTSPOT: usize = 10;
/// Workload seed shared by all benches so series are comparable.
pub const WORKLOAD_SEED: u64 = 2024;

/// Builds the graph for `name` at the environment-controlled scale.
pub fn bench_graph(name: ProfileName) -> Arc<grouting_core::graph::CsrGraph> {
    Arc::new(DatasetProfile::from_env(name).generate())
}

/// Builds full preprocessing assets for a profile with the paper's defaults.
pub fn bench_assets(name: ProfileName) -> SimAssets {
    bench_assets_storage(name, PAPER_STORAGE)
}

/// Assets with an explicit storage-server count.
pub fn bench_assets_storage(name: ProfileName, storage: usize) -> SimAssets {
    SimAssets::paper_defaults(bench_graph(name), storage)
}

/// The paper's standard workload: r-hop hotspots, h-hop traversals,
/// uniform query mix.
pub fn paper_workload(assets: &SimAssets, radius: u32, hops: u32) -> Vec<Query> {
    hotspot_workload(
        &assets.graph,
        &WorkloadConfig {
            hotspots: PAPER_HOTSPOTS,
            per_hotspot: PAPER_PER_HOTSPOT,
            radius,
            hops,
            mix: QueryMix::uniform(),
            restart_prob: 0.15,
            seed: WORKLOAD_SEED,
        },
    )
    .queries
}

/// Paper-default simulation config with a cache sized for the bench scale.
///
/// The paper gives each processor 4 GB against a 60 GB graph (≈ 6.7 %);
/// benches size the cache relative to the scaled graph the same way unless
/// a sweep overrides it.
pub fn bench_sim_config(assets: &SimAssets, processors: usize, routing: RoutingKind) -> SimConfig {
    SimConfig {
        cache_capacity: default_cache_bytes(assets),
        ..SimConfig::paper_default(processors, routing)
    }
}

/// "Sufficient capacity" cache (the §4.3 setting where nothing is evicted).
pub fn ample_cache_config(
    _assets: &SimAssets,
    processors: usize,
    routing: RoutingKind,
) -> SimConfig {
    SimConfig {
        cache_capacity: 1 << 30,
        ..SimConfig::paper_default(processors, routing)
    }
}

/// Default bench cache: ~8% of the stored graph bytes, min 1 MiB.
pub fn default_cache_bytes(assets: &SimAssets) -> usize {
    let stored: usize = assets.tier.bytes_per_server().iter().sum();
    (stored / 12).max(1 << 20)
}

/// Formats a byte count as a human-readable string.
pub fn human_bytes(b: u64) -> String {
    const K: f64 = 1024.0;
    let b = b as f64;
    if b >= K * K * K {
        format!("{:.1} GiB", b / K / K / K)
    } else if b >= K * K {
        format!("{:.1} MiB", b / K / K)
    } else if b >= K {
        format!("{:.1} KiB", b / K)
    } else {
        format!("{b:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(3 << 20), "3.0 MiB");
        assert_eq!(human_bytes(5 << 30), "5.0 GiB");
    }
}
