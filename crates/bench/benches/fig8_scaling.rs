//! Figure 8: scalability and deployment flexibility.
//!
//! (a) throughput vs number of query processors (1–7, 4 storage servers);
//! (b) cache hits vs number of query processors (ample cache, as §4.3);
//! (c) throughput vs number of storage servers (1–7, 4 processors).
//!
//! Paper shape: smart routing sustains its cache-hit level as processors
//! are added (so throughput keeps rising), while the baselines' hits decay
//! and their throughput saturates at 3–5 processors; storage-tier
//! throughput saturates once it outruns 4 processors' demand.

use grouting_bench::{ample_cache_config, bench_assets, paper_workload};
use grouting_core::gen::ProfileName;
use grouting_core::metrics::TableReport;
use grouting_core::prelude::*;
use grouting_core::sim::simulate;

fn main() {
    let assets = bench_assets(ProfileName::WebGraph);
    let queries = paper_workload(&assets, 2, 2);

    let mut a = TableReport::new(
        "Figure 8(a,b): throughput and cache hits vs query processors (WebGraph)",
        &[
            "processors",
            "routing",
            "throughput_qps",
            "cache_hits",
            "hit_rate_%",
        ],
    );
    for p in 1..=7 {
        for routing in RoutingKind::ALL {
            let cfg = ample_cache_config(&assets, p, routing);
            let r = simulate(&assets, &queries, &cfg);
            a.row(vec![
                p.into(),
                routing.to_string().into(),
                r.throughput_qps().into(),
                r.cache_hits.into(),
                (r.hit_rate() * 100.0).into(),
            ]);
        }
    }
    a.print();

    let mut c = TableReport::new(
        "Figure 8(c): throughput vs storage servers (4 processors, WebGraph)",
        &["storage_servers", "routing", "throughput_qps"],
    );
    for s in 1..=7 {
        let scaled = assets.with_storage_servers(s);
        for routing in [RoutingKind::NoCache, RoutingKind::Embed] {
            let cfg = ample_cache_config(&scaled, 4, routing);
            let r = simulate(&scaled, &queries, &cfg);
            c.row(vec![
                s.into(),
                routing.to_string().into(),
                r.throughput_qps().into(),
            ]);
        }
    }
    c.print();
}
