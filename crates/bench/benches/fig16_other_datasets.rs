//! Figure 16: efficiency on Memetracker and Friendster.
//!
//! 2-hop hotspot, 2-hop traversal on the two remaining datasets. Paper
//! shape: Memetracker behaves like WebGraph (baselines cut ~30 % off
//! no-cache, smart routing another ~10 %); on Friendster all gains shrink
//! because 2-hop neighbourhoods are much larger (computation dominates)
//! and hotspot neighbourhoods overlap less.

use grouting_bench::{bench_assets, default_cache_bytes, paper_workload, PAPER_PROCESSORS};
use grouting_core::gen::ProfileName;
use grouting_core::metrics::TableReport;
use grouting_core::prelude::*;
use grouting_core::sim::{simulate, SimConfig};

fn main() {
    let mut t = TableReport::new(
        "Figure 16: response time on Memetracker and Friendster (r=2, h=2)",
        &["dataset", "routing", "response_ms", "hit_rate_%"],
    );
    for name in [ProfileName::Memetracker, ProfileName::Friendster] {
        let assets = bench_assets(name);
        let queries = paper_workload(&assets, 2, 2);
        let cache = default_cache_bytes(&assets);
        for routing in RoutingKind::ALL {
            let cfg = SimConfig {
                cache_capacity: cache,
                ..SimConfig::paper_default(PAPER_PROCESSORS, routing)
            };
            let rep = simulate(&assets, &queries, &cfg);
            t.row(vec![
                name.as_str().into(),
                routing.to_string().into(),
                rep.mean_response_ms().into(),
                (rep.hit_rate() * 100.0).into(),
            ]);
        }
    }
    t.print();
}
