//! Table 3: preprocessing storage.
//!
//! The paper: landmark-routing tables 2.8 GB, the embedding 4 GB, against
//! the 60.3 GB original WebGraph — both "modest compared to the original
//! graph". Same ratio check on the scaled profile.

use grouting_bench::{bench_assets, human_bytes, PAPER_PROCESSORS};
use grouting_core::embed::ProcessorDistanceTable;
use grouting_core::gen::ProfileName;
use grouting_core::metrics::TableReport;

fn main() {
    let assets = bench_assets(ProfileName::WebGraph);
    let graph_bytes = assets.graph.topology_bytes() as u64;
    let table = ProcessorDistanceTable::build(&assets.landmarks, PAPER_PROCESSORS);
    let landmark_bytes = (assets.landmarks.storage_bytes() + table.storage_bytes()) as u64;
    let embed_bytes = assets.embedding.storage_bytes() as u64;

    let mut t = TableReport::new(
        "Table 3: preprocessing storage, WebGraph profile",
        &["structure", "bytes", "fraction_of_graph_%"],
    );
    t.row(vec![
        "landmark routing (dist maps + d(u,p) table)".into(),
        human_bytes(landmark_bytes).into(),
        (100.0 * landmark_bytes as f64 / graph_bytes as f64).into(),
    ]);
    t.row(vec![
        "embed routing (f32 coords, D=10)".into(),
        human_bytes(embed_bytes).into(),
        (100.0 * embed_bytes as f64 / graph_bytes as f64).into(),
    ]);
    t.row(vec![
        "original graph topology".into(),
        human_bytes(graph_bytes).into(),
        100.0f64.into(),
    ]);
    t.print();
    println!("(paper: 2.8 GB landmark, 4 GB embed vs 60.3 GB graph — 4.6% and 6.6%)");
}
