//! Ablations beyond the paper's figures (DESIGN.md §4).
//!
//! 1. Cache policy: the paper chose LRU "because of its simplicity … it
//!    favors recent queries"; FIFO and LFU quantify that choice.
//! 2. Query stealing on/off under a skewed workload (Requirement 2).
//! 3. Admission window depth: how much lookahead the router needs before
//!    smart routing pays off.

use grouting_bench::{bench_assets, default_cache_bytes, paper_workload, PAPER_PROCESSORS};
use grouting_core::cache::Policy;
use grouting_core::gen::ProfileName;
use grouting_core::metrics::TableReport;
use grouting_core::prelude::*;
use grouting_core::sim::{simulate, SimConfig};

fn main() {
    let assets = bench_assets(ProfileName::WebGraph);
    let queries = paper_workload(&assets, 2, 2);
    let cache = default_cache_bytes(&assets);

    let mut a = TableReport::new(
        "Ablation: cache eviction policy (embed routing, WebGraph)",
        &["policy", "response_ms", "hit_rate_%", "evictions"],
    );
    for policy in [Policy::Lru, Policy::Fifo, Policy::Lfu] {
        let cfg = SimConfig {
            cache_capacity: cache,
            cache_policy: policy,
            ..SimConfig::paper_default(PAPER_PROCESSORS, RoutingKind::Embed)
        };
        let r = simulate(&assets, &queries, &cfg);
        a.row(vec![
            policy.to_string().into(),
            r.mean_response_ms().into(),
            (r.hit_rate() * 100.0).into(),
            r.evictions.into(),
        ]);
    }
    a.print();

    let mut b = TableReport::new(
        "Ablation: query stealing (hash routing, all queries on one hotspot)",
        &["stealing", "throughput_qps", "load_imbalance_cv", "stolen"],
    );
    // Worst-case skew: every query anchored at the same node.
    let anchor = assets.graph.nodes_by_degree_desc()[0];
    let skewed: Vec<_> = (0..200)
        .map(|_| grouting_core::query::Query::NeighborAggregation {
            node: anchor,
            hops: 2,
            label: None,
        })
        .collect();
    for stealing in [true, false] {
        let cfg = SimConfig {
            cache_capacity: cache,
            stealing,
            ..SimConfig::paper_default(PAPER_PROCESSORS, RoutingKind::Hash)
        };
        let r = simulate(&assets, &skewed, &cfg);
        b.row(vec![
            if stealing { "on" } else { "off" }.into(),
            r.throughput_qps().into(),
            r.load_imbalance().into(),
            r.stolen.into(),
        ]);
    }
    b.print();

    let mut c = TableReport::new(
        "Ablation: admission window depth (embed routing, WebGraph)",
        &["window", "throughput_qps", "hit_rate_%", "stolen"],
    );
    for mult in [1usize, 2, 4, 8, 16, 32] {
        let cfg = SimConfig {
            cache_capacity: cache,
            admission_window: mult * PAPER_PROCESSORS,
            ..SimConfig::paper_default(PAPER_PROCESSORS, RoutingKind::Embed)
        };
        let r = simulate(&assets, &queries, &cfg);
        c.row(vec![
            format!("{mult}xP").into(),
            r.throughput_qps().into(),
            (r.hit_rate() * 100.0).into(),
            r.stolen.into(),
        ]);
    }
    c.print();
}
