//! Table 1: graph datasets.
//!
//! Prints, per dataset, the paper's reported size next to this
//! reproduction's scaled synthetic profile and its measured statistics.

use grouting_bench::{bench_graph, human_bytes};
use grouting_core::gen::ProfileName;
use grouting_core::graph::stats::{mean_h_hop_size, GraphStats};
use grouting_core::metrics::TableReport;

fn main() {
    let mut t = TableReport::new(
        "Table 1: graph datasets (paper vs scaled profile)",
        &[
            "dataset",
            "paper_nodes",
            "paper_edges",
            "paper_size",
            "nodes",
            "edges",
            "adj_bytes",
            "max_deg",
            "mean_deg",
            "avg_2hop",
        ],
    );
    for name in ProfileName::ALL {
        let g = bench_graph(name);
        let s = GraphStats::compute(&g);
        let two_hop = mean_h_hop_size(&g, 2, 200);
        t.row(vec![
            name.as_str().into(),
            name.paper_nodes().into(),
            name.paper_edges().into(),
            human_bytes(name.paper_bytes()).into(),
            s.nodes.into(),
            s.edges.into(),
            human_bytes(s.adjacency_bytes as u64).into(),
            s.max_degree.into(),
            s.mean_degree.into(),
            two_hop.into(),
        ]);
    }
    t.print();
}
