//! Criterion micro-benchmarks of the performance-critical primitives:
//! MurmurHash3, LRU operations, BFS traversal, per-strategy routing
//! decisions, the Simplex-Downhill minimiser, and the wire path (frame
//! encode/decode plus transport round trips).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use grouting_core::cache::{Cache, LruCache};
use grouting_core::embed::landmarks::{LandmarkConfig, Landmarks};
use grouting_core::embed::simplex::{minimize, SimplexOptions};
use grouting_core::embed::{EmbeddingConfig, ProcessorDistanceTable};
use grouting_core::gen::community::{generate, CommunityConfig};
use grouting_core::graph::traversal::{bfs_distances, Direction};
use grouting_core::graph::NodeId;
use grouting_core::partition::murmur3::{hash_node, murmur3_x64_128};
use grouting_core::partition::{HashPartitioner, Partitioner};
use grouting_core::query::Query;
use grouting_core::route::{EmbedRouter, Strategy};

fn bench_graph() -> grouting_core::graph::CsrGraph {
    generate(
        &CommunityConfig {
            nodes: 20_000,
            community_size: 200,
            edges: 200_000,
            cross_fraction: 0.05,
            shortcut_fraction: 0.01,
        },
        7,
    )
}

fn murmur(c: &mut Criterion) {
    if !criterion::group_enabled("murmur3") {
        return;
    }
    let mut g = c.benchmark_group("murmur3");
    g.bench_function("x86_32_node_id", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            std::hint::black_box(hash_node(i, 0x9747_b28c))
        })
    });
    g.bench_function("x64_128_64B", |b| {
        let data = [0xABu8; 64];
        b.iter(|| std::hint::black_box(murmur3_x64_128(&data, 1)))
    });
    g.finish();
}

fn lru(c: &mut Criterion) {
    if !criterion::group_enabled("lru") {
        return;
    }
    let mut g = c.benchmark_group("lru");
    g.bench_function("insert_evict", |b| {
        b.iter_batched(
            || LruCache::<u32, u64>::new(64 * 100),
            |mut cache| {
                for i in 0..1000u32 {
                    cache.insert(i, i as u64, 64);
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("hit_get", |b| {
        let mut cache = LruCache::<u32, u64>::new(1 << 20);
        for i in 0..1000u32 {
            cache.insert(i, i as u64, 64);
        }
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 1000;
            std::hint::black_box(cache.get(&i).copied())
        })
    });
    g.finish();
}

fn bfs(c: &mut Criterion) {
    if !criterion::group_enabled("bfs") {
        return;
    }
    let graph = bench_graph();
    let mut g = c.benchmark_group("bfs");
    g.sample_size(20);
    g.bench_function("full_bfs_20k_nodes", |b| {
        b.iter(|| std::hint::black_box(bfs_distances(&graph, NodeId::new(0), Direction::Both)))
    });
    g.finish();
}

fn routing_decision(c: &mut Criterion) {
    if !criterion::group_enabled("routing_decision") {
        return;
    }
    let graph = bench_graph();
    let landmarks = Landmarks::build(
        &graph,
        &LandmarkConfig {
            count: 32,
            min_separation: 3,
        },
    );
    let table = ProcessorDistanceTable::build(&landmarks, 7);
    let embedding = std::sync::Arc::new(grouting_core::embed::embedding::Embedding::build(
        &landmarks,
        &EmbeddingConfig {
            dimensions: 10,
            landmark_sweeps: 1,
            landmark_iters: 100,
            node_iters: 30,
            nearest_landmarks: 8,
            seed: 1,
        },
    ));
    let loads = vec![3usize, 1, 4, 1, 5, 9, 2];
    let up = vec![true; 7];
    let strategies: Vec<(&str, Strategy)> = vec![
        ("hash", Strategy::Hash),
        ("landmark", Strategy::Landmark(table)),
        (
            "embed",
            Strategy::Embed(EmbedRouter::new(embedding, 7, 0.9, 1)),
        ),
    ];
    let mut g = c.benchmark_group("routing_decision");
    for (name, strategy) in &strategies {
        g.bench_function(name, |b| {
            let mut i = 0u32;
            b.iter(|| {
                i = (i + 1) % 20_000;
                let q = Query::NeighborAggregation {
                    node: NodeId::new(i),
                    hops: 2,
                    label: None,
                };
                std::hint::black_box(strategy.preferred(&q, &loads, &up, 20.0))
            })
        });
    }
    g.finish();
}

fn partitioning(c: &mut Criterion) {
    if !criterion::group_enabled("partition") {
        return;
    }
    let mut g = c.benchmark_group("partition");
    g.bench_function("hash_assign", |b| {
        let p = HashPartitioner::new(4);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            std::hint::black_box(p.assign(NodeId::new(i)))
        })
    });
    g.finish();
}

fn simplex(c: &mut Criterion) {
    if !criterion::group_enabled("simplex") {
        return;
    }
    let mut g = c.benchmark_group("simplex");
    g.bench_function("rosenbrock_2d", |b| {
        b.iter(|| {
            minimize(
                |x| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
                &[-1.2, 1.0],
                &SimplexOptions {
                    max_iters: 200,
                    tolerance: 1e-9,
                    initial_step: 0.5,
                },
            )
        })
    });
    g.finish();
}

fn wire_frames(c: &mut Criterion) {
    if !criterion::group_enabled("wire_frame") {
        return;
    }
    use grouting_core::query::AccessStats;
    use grouting_core::wire::{Completion, Frame};

    let dispatch = Frame::Dispatch {
        seq: 123_456,
        query: Query::NeighborAggregation {
            node: NodeId::new(42),
            hops: 2,
            label: None,
        },
        trace: None,
    };
    let completion = Frame::Completion(Completion {
        seq: 123_456,
        processor: 3,
        result: grouting_core::query::QueryResult::Count(97),
        stats: AccessStats {
            cache_hits: 80,
            cache_misses: 17,
            miss_bytes: 4096,
            evictions: 2,
        },
        prefetch: grouting_core::query::PrefetchStats::default(),
        failover: grouting_core::metrics::FailoverStats::default(),
        arrived_ns: 1,
        started_ns: 2,
        completed_ns: 3,
        heat: {
            let mut h = grouting_core::metrics::HeatMap::new();
            h.record_demand(1, 17);
            h.record_speculative(2, 4);
            h
        },
        trace: None,
    });
    let fetch_response = Frame::FetchResponse {
        node: NodeId::new(42),
        payload: Some((1, bytes::Bytes::from(vec![0xA5u8; 256]))),
    };

    let mut g = c.benchmark_group("wire_frame");
    for (name, frame) in [
        ("dispatch", &dispatch),
        ("completion", &completion),
        ("fetch_response_256B", &fetch_response),
    ] {
        g.bench_function(&format!("encode_{name}"), |b| {
            b.iter(|| std::hint::black_box(frame.encode()))
        });
        let encoded = frame.encode();
        g.bench_function(&format!("decode_{name}"), |b| {
            b.iter(|| std::hint::black_box(Frame::decode(encoded.clone()).unwrap()))
        });
    }
    g.finish();
}

fn wire_round_trip(c: &mut Criterion) {
    if !criterion::group_enabled("wire_round_trip") {
        return;
    }
    use grouting_core::wire::{
        ConnectionPool, Frame, InProcTransport, TcpTransport, Transport, TransportKind,
    };
    use std::sync::Arc;

    // An echo peer per transport; the bench measures one framed
    // request/response exchange through a connection pool.
    fn echo_endpoint(transport: &Arc<dyn Transport>) -> (String, std::thread::JoinHandle<()>) {
        let mut listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let join = std::thread::spawn(move || {
            let Ok(mut conn) = listener.accept() else {
                return;
            };
            while let Ok(frame) = conn.recv() {
                if matches!(frame, Frame::Shutdown) || conn.send(&frame).is_err() {
                    break;
                }
            }
        });
        (addr, join)
    }

    let transports: Vec<(&str, Arc<dyn Transport>)> =
        if TransportKind::from_env() == TransportKind::InProc {
            vec![("inproc", Arc::new(InProcTransport::new()))]
        } else {
            vec![
                ("tcp_loopback", Arc::new(TcpTransport::new())),
                ("inproc", Arc::new(InProcTransport::new())),
            ]
        };

    let mut g = c.benchmark_group("wire_round_trip");
    for (name, transport) in transports {
        let (addr, join) = echo_endpoint(&transport);
        let mut pool = ConnectionPool::new(Arc::clone(&transport), addr, 1);
        let request = Frame::FetchRequest {
            node: NodeId::new(7),
        };
        g.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(pool.request(&request).unwrap()))
        });
        // Dropping the pool closes its parked connection; the echo peer's
        // recv fails and its thread exits.
        drop(pool);
        let _ = join.join();
    }
    g.finish();
}

fn wire_frontier_fetch(c: &mut Criterion) {
    if !criterion::group_enabled("wire_fetch_frontier64")
        && !criterion::group_enabled("wire_bfs_2hop")
    {
        return;
    }
    use grouting_core::cache::NullCache;
    use grouting_core::engine::Worker;
    use grouting_core::query::{BatchSource, ProcessorCache, RecordSource};
    use grouting_core::storage::{NetworkModel, StorageTier};
    use grouting_core::wire::{
        MultiplexedStorageSource, RemoteStorageSource, StorageService, TcpTransport, Transport,
        TransportKind,
    };
    use std::sync::Arc;

    if TransportKind::from_env() == TransportKind::InProc {
        // No loopback in this sandbox; the comparison is meaningless over
        // channels, so skip rather than publish misleading numbers.
        return;
    }

    // A real storage deployment on TCP loopback: the graph sharded over 3
    // socket endpoints, queried by a worker whose cache never retains
    // (NullCache), so every frontier node is a wire fetch each iteration.
    let graph = bench_graph();
    let tier = Arc::new(StorageTier::new(Arc::new(HashPartitioner::new(3))));
    tier.load_graph(&graph).unwrap();
    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    let handles: Vec<_> = (0..tier.server_count())
        .map(|_| {
            StorageService::spawn(
                Arc::clone(&transport),
                Arc::clone(&tier),
                NetworkModel::local(),
            )
            .unwrap()
        })
        .collect();
    let addrs: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();

    // A frontier of 64 known-stored nodes — every one a miss under
    // NullCache, so "per_node" pays 64 serialised RTTs where "batched"
    // pays one pipelined exchange per server.
    let frontier: Vec<NodeId> = (0..64u32).map(NodeId::new).collect();
    let mut scalar_source =
        RemoteStorageSource::new(Arc::clone(&transport), &addrs, tier.partitioner());
    let mut batched_source =
        MultiplexedStorageSource::new(Arc::clone(&transport), &addrs, tier.partitioner());

    let mut g = c.benchmark_group("wire_fetch_frontier64");
    g.sample_size(20);
    g.bench_function("per_node", |b| {
        b.iter(|| {
            for &node in &frontier {
                std::hint::black_box(scalar_source.fetch_raw(node));
            }
        })
    });
    g.bench_function("batched", |b| {
        b.iter(|| std::hint::black_box(batched_source.fetch_batch(&frontier)))
    });
    g.finish();

    // The end-to-end shape the subsystem exists for: a multi-hop BFS whose
    // every discovered node crosses the wire. The 2-hop neighbourhood on
    // the community graph is hundreds of nodes, far past the 64-miss bar.
    let query = Query::NeighborAggregation {
        node: NodeId::new(1),
        hops: 2,
        label: None,
    };
    let mut g = c.benchmark_group("wire_bfs_2hop");
    g.sample_size(10);
    for name in ["per_node", "batched"] {
        let cache: ProcessorCache = Box::new(NullCache::new());
        let source: Box<dyn BatchSource + Send> = if name == "per_node" {
            Box::new(RemoteStorageSource::new(
                Arc::clone(&transport),
                &addrs,
                tier.partitioner(),
            ))
        } else {
            Box::new(MultiplexedStorageSource::new(
                Arc::clone(&transport),
                &addrs,
                tier.partitioner(),
            ))
        };
        let mut worker = Worker::from_parts(0, source, cache);
        g.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(worker.run(&query)))
        });
    }
    g.finish();

    drop(scalar_source);
    drop(batched_source);
    for h in handles {
        h.shutdown();
    }
}

fn reactor_dispatch_latency(c: &mut Criterion) {
    if !criterion::group_enabled("reactor_dispatch_latency") {
        return;
    }
    use grouting_core::wire::{
        Frame, InProcTransport, Reactor, ReactorEvent, TcpTransport, Transport, TransportKind,
    };
    use std::sync::Arc;

    // One reactor thread echoing every frame it sees — the exact wake-up
    // path a router dispatch takes (poll sweep in, send out), measured as
    // a client-observed round trip.
    fn echo_reactor(transport: &Arc<dyn Transport>) -> (String, std::thread::JoinHandle<()>) {
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let join = std::thread::spawn(move || {
            let mut reactor = Reactor::new(listener);
            let mut events = Vec::new();
            loop {
                if reactor.wait(&mut events, &|| false).is_err() {
                    return;
                }
                for event in events.drain(..) {
                    match event {
                        ReactorEvent::Frame(id, Frame::Shutdown) => {
                            reactor.close(id);
                            return;
                        }
                        ReactorEvent::Frame(id, frame) => {
                            if reactor.send(id, &frame).is_err() {
                                reactor.close(id);
                            }
                        }
                        ReactorEvent::Opened(_) | ReactorEvent::Closed(_) => {}
                    }
                }
            }
        });
        (addr, join)
    }

    let transports: Vec<(&str, Arc<dyn Transport>)> =
        if TransportKind::from_env() == TransportKind::InProc {
            vec![("inproc", Arc::new(InProcTransport::new()))]
        } else {
            vec![
                ("tcp_loopback", Arc::new(TcpTransport::new())),
                ("inproc", Arc::new(InProcTransport::new())),
            ]
        };

    let mut g = c.benchmark_group("reactor_dispatch_latency");
    for (name, transport) in transports {
        let (addr, join) = echo_reactor(&transport);
        let mut conn = transport.dial(&addr).unwrap();
        let request = Frame::FetchRequest {
            node: NodeId::new(7),
        };
        g.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(conn.request(&request).unwrap()))
        });
        conn.send(&Frame::Shutdown).unwrap();
        let _ = join.join();
    }
    g.finish();
}

fn reactor_idle_cpu_1k(c: &mut Criterion) {
    if !criterion::group_enabled("reactor_idle_cpu_1k") {
        return;
    }
    use grouting_core::wire::{PollerKind, Reactor, TcpTransport, Transport, TransportKind};
    use std::sync::Arc;

    if TransportKind::from_env() == TransportKind::InProc {
        // The comparison is about kernel readiness over real descriptors;
        // channels have neither, so skip.
        return;
    }

    // The idle-cost acceptance shape: ONE reactor holding ~1k established,
    // silent TCP connections, measured per idle poll round. The sweep
    // backend must try_recv every connection (O(connections) syscalls per
    // round); epoll asks the kernel once (O(1) per round, regardless of
    // connection count). `note_progress` before each round pins both
    // backends to their non-blocking path, so the number is pure CPU cost,
    // not sleep time.
    const CONNS: usize = 1000;
    // Dial in batches under the listener's accept backlog (128 in std),
    // draining accepts between batches so no connect ever parks.
    const DIAL_BATCH: usize = 64;

    let mut g = c.benchmark_group("reactor_idle_cpu_1k");
    g.sample_size(20);
    for (name, kind) in [("sweep", PollerKind::Sweep), ("epoll", PollerKind::Epoll)] {
        let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let mut reactor = Reactor::with_poller(listener, kind);
        let addr = reactor.addr();
        let mut clients = Vec::with_capacity(CONNS);
        let mut events = Vec::new();
        while clients.len() < CONNS {
            for _ in 0..DIAL_BATCH.min(CONNS - clients.len()) {
                clients.push(transport.dial(&addr).unwrap());
            }
            reactor.poll(&mut events).unwrap();
            events.clear();
        }
        while reactor.connections() < CONNS {
            reactor.poll(&mut events).unwrap();
            events.clear();
        }
        g.bench_function(name, |b| {
            b.iter(|| {
                reactor.note_progress();
                events.clear();
                reactor
                    .wait_timeout(&mut events, &|| true, std::time::Duration::ZERO)
                    .unwrap();
                assert!(events.is_empty(), "connections must stay silent");
            })
        });
        drop(clients);
    }
    g.finish();
}

fn wire_overlap_throughput(c: &mut Criterion) {
    if !criterion::group_enabled("wire_overlap_throughput") {
        return;
    }
    use grouting_core::cache::NullCache;
    use grouting_core::query::ProcessorCache;
    use grouting_core::storage::{NetworkModel, StorageTier};
    use grouting_core::wire::{
        MultiplexedStorageSource, QueryPipeline, StorageService, TcpTransport, Transport,
        TransportKind,
    };
    use std::sync::Arc;

    if TransportKind::from_env() == TransportKind::InProc {
        // No loopback in this sandbox; overlap numbers over channels say
        // nothing about hiding real wire latency, so skip.
        return;
    }

    // The tentpole's acceptance shape: a mixed 2-hop BFS workload over TCP
    // loopback, one processor, NullCache (every access crosses the wire).
    // overlap=1 is the strictly serial PR 3 path; overlap=2 double-buffers
    // frontiers across queries — while query A computes a level, query B's
    // batch is already travelling.
    //
    // Two storage-network settings: `remote` emulates the paper's
    // decoupled tier (a ~200 µs cross-rack exchange, slept off-core at the
    // storage endpoints — the latency overlap exists to hide), and
    // `local` is raw loopback with a free network (nothing to hide beyond
    // scheduler handoffs, so the win there is modest by construction).
    let graph = bench_graph();
    let tier = Arc::new(StorageTier::new(Arc::new(HashPartitioner::new(3))));
    tier.load_graph(&graph).unwrap();
    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    let remote_net = NetworkModel {
        rtt_ns: 200_000,
        gbps: 10.0,
    };

    let queries: Vec<Query> = (0..8u32)
        .map(|i| Query::NeighborAggregation {
            node: NodeId::new(i * 97 + 1),
            hops: 2,
            label: None,
        })
        .collect();

    let mut g = c.benchmark_group("wire_overlap_throughput");
    g.sample_size(10);
    for (net_name, net) in [("remote", remote_net), ("local", NetworkModel::local())] {
        let handles: Vec<_> = (0..tier.server_count())
            .map(|_| StorageService::spawn(Arc::clone(&transport), Arc::clone(&tier), net).unwrap())
            .collect();
        let addrs: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();
        for overlap in [1usize, 2, 4] {
            let mut source =
                MultiplexedStorageSource::new(Arc::clone(&transport), &addrs, tier.partitioner());
            g.bench_function(&format!("{net_name}_overlap{overlap}"), |b| {
                b.iter(|| {
                    let mut cache: ProcessorCache = Box::new(NullCache::new());
                    let mut pipeline = QueryPipeline::new(overlap);
                    for (seq, q) in queries.iter().enumerate() {
                        pipeline.push(seq as u64, *q);
                    }
                    let mut done = 0usize;
                    let mut backoff = grouting_core::wire::Backoff::new();
                    while !pipeline.is_idle() {
                        let finished = pipeline.step(&mut source, &mut cache).unwrap().len();
                        if finished > 0 {
                            done += finished;
                            backoff.reset();
                        } else {
                            backoff.idle();
                        }
                    }
                    assert_eq!(done, queries.len());
                    done
                })
            });
        }
        drop(handles);
    }
    g.finish();
}

fn wire_prefetch(c: &mut Criterion) {
    if !criterion::group_enabled("wire_prefetch") {
        return;
    }
    use grouting_core::cache::{LruCache, NullCache};
    use grouting_core::query::{PrefetchConfig, PrefetchPolicy, ProcessorCache};
    use grouting_core::storage::{NetworkModel, StorageTier};
    use grouting_core::wire::{
        Backoff, MultiplexedStorageSource, QueryPipeline, StorageService, TcpTransport, Transport,
        TransportKind,
    };
    use std::sync::Arc;

    if TransportKind::from_env() == TransportKind::InProc {
        // No loopback in this sandbox; prefetch numbers over channels say
        // nothing about hiding real wire latency, so skip.
        return;
    }

    // The RTT-per-level scenario the subsystem exists for: cold 2-hop BFS
    // over the emulated ~200 µs cross-rack tier (the decoupled storage the
    // paper measures as gRouting-E). Without speculation every BFS level
    // pays one full emulated RTT before the next can start; with it, the
    // frontier batch going out piggybacks predicted next-hop nodes, so
    // later levels are served from the staging buffer with no exchange at
    // all.
    //
    // Two cache settings isolate the two predictors:
    //  * NullCache — every access would cross the wire ("cold" at its
    //    purest); the history predictor stages the hotspot region after
    //    the first query and cuts ~2 of 3 exchanges per query thereafter.
    //  * small LRU — the region half-fits; the structural predictor peeks
    //    the cached frontier members and speculates on their neighbours
    //    (the boundary the cache does not yet hold).
    let graph = bench_graph();
    let tier = Arc::new(StorageTier::new(Arc::new(HashPartitioner::new(3))));
    tier.load_graph(&graph).unwrap();
    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    let remote_net = NetworkModel {
        rtt_ns: 200_000,
        gbps: 10.0,
    };
    let handles: Vec<_> = (0..tier.server_count())
        .map(|_| {
            StorageService::spawn(Arc::clone(&transport), Arc::clone(&tier), remote_net).unwrap()
        })
        .collect();
    let addrs: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();

    // Two workload shapes, one per predictor's honest niche. An RTT is
    // only saved when a *whole* level is staged, so each predictor needs
    // the repetition structure it actually exploits:
    //
    //  * `hotspot` — twelve 2-hop queries cycling over three hotspot
    //    roots (the paper's hotspot workload: repeat queries concentrated
    //    on one processor), against a NullCache so every access would
    //    cross the wire. The history predictor stages the whole region
    //    after the first visit and later queries run almost wire-free.
    //  * `lru_degree` — twelve distinct roots *walking* across one
    //    community over a 256 KiB LRU: the cache holds the recently
    //    visited region, so each new query's frontier is partially
    //    cached, and the structural predictor speculates on the cached
    //    members' neighbours — the boundary the cache does not yet hold.
    //
    // (The inverse pairings demonstrate *waste*, not wins: repeat roots
    // over a retaining LRU leave speculation nothing to add — README
    // documents that trade-off.)
    let hotspot_queries: Vec<Query> = (0..12u32)
        .map(|i| Query::NeighborAggregation {
            node: NodeId::new((i % 3) * 7 + 1),
            hops: 2,
            label: None,
        })
        .collect();
    let walking_queries: Vec<Query> = (0..12u32)
        .map(|i| Query::NeighborAggregation {
            node: NodeId::new(i * 3 + 1),
            hops: 2,
            label: None,
        })
        .collect();

    let run = |source: &mut MultiplexedStorageSource,
               cache: &mut ProcessorCache,
               prefetch: PrefetchConfig,
               queries: &[Query]| {
        let mut pipeline = QueryPipeline::new(1).with_prefetch(prefetch);
        for (seq, q) in queries.iter().enumerate() {
            pipeline.push(seq as u64, *q);
        }
        let mut done = 0usize;
        let mut backoff = Backoff::new();
        while !pipeline.is_idle() {
            let finished = pipeline.step(source, cache).unwrap().len();
            if finished > 0 {
                done += finished;
                backoff.reset();
            } else {
                backoff.idle();
            }
        }
        assert_eq!(done, queries.len());
        pipeline.prefetch_stats()
    };

    type MakeCache = fn() -> ProcessorCache;
    let variants: [(&str, PrefetchPolicy, MakeCache, &[Query]); 4] = [
        (
            "off",
            PrefetchPolicy::Off,
            || Box::new(NullCache::new()),
            &hotspot_queries,
        ),
        (
            "hotspot",
            PrefetchPolicy::Hotspot,
            || Box::new(NullCache::new()),
            &hotspot_queries,
        ),
        (
            "lru_off",
            PrefetchPolicy::Off,
            || Box::new(LruCache::new(256 << 10)),
            &walking_queries,
        ),
        (
            "lru_degree",
            PrefetchPolicy::Degree,
            || Box::new(LruCache::new(256 << 10)),
            &walking_queries,
        ),
    ];

    let mut g = c.benchmark_group("wire_prefetch");
    g.sample_size(10);
    for (name, policy, make_cache, queries) in variants {
        let mut config = PrefetchConfig::with_policy(policy);
        if policy != PrefetchPolicy::Off {
            // The hotspot's 2-hop union region is ~1k nodes; the budget
            // must cover a whole level for the RTT to disappear.
            config.max_nodes = 1024;
        }
        let mut source =
            MultiplexedStorageSource::new(Arc::clone(&transport), &addrs, tier.partitioner());
        g.bench_function(name, |b| {
            b.iter(|| {
                // Cold per pass: fresh cache AND fresh predictor state, so
                // each measured pass includes the predictor's warm-up —
                // the win reported is the honest steady-state average.
                let mut cache = make_cache();
                std::hint::black_box(run(&mut source, &mut cache, config, queries))
            })
        });
        // Publish the speculative tally of one instrumented pass next to
        // the timings, so the uploaded artifact carries the new snapshot
        // counters alongside the latency medians.
        if policy != PrefetchPolicy::Off {
            let mut cache = make_cache();
            let stats = run(&mut source, &mut cache, config, queries);
            criterion::record_metric(&format!("wire_prefetch/{name}_issued"), stats.issued as f64);
            criterion::record_metric(&format!("wire_prefetch/{name}_hits"), stats.hits as f64);
            criterion::record_metric(
                &format!("wire_prefetch/{name}_wasted_bytes"),
                stats.wasted_bytes as f64,
            );
        }
    }
    g.finish();

    for h in handles {
        h.shutdown();
    }
}

fn wire_failover(c: &mut Criterion) {
    if !criterion::group_enabled("wire_failover") {
        return;
    }
    use grouting_core::query::BatchSource;
    use grouting_core::storage::{NetworkModel, StorageTier};
    use grouting_core::wire::{
        InProcTransport, MultiplexedStorageSource, RetryPolicy, StorageService, TcpTransport,
        Transport, TransportKind,
    };
    use std::sync::Arc;
    use std::time::Duration;

    // Recovery cost of replica-chain failover: a 64-miss frontier fetched
    // through a mux whose primary endpoint is dead (its address refuses
    // dials) while the replica serves the same tier. Every iteration
    // starts from a cold mux, so the measured time is the failed primary
    // probe + chain walk + one batched exchange — the price a processor
    // pays the moment a storage node dies.
    let graph = bench_graph();
    let tier = Arc::new(StorageTier::new(Arc::new(HashPartitioner::new(1))));
    tier.load_graph(&graph).unwrap();
    let frontier: Vec<NodeId> = (0..64u32).map(NodeId::new).collect();
    let retry = RetryPolicy::new(2, Duration::from_millis(1));

    let transports: Vec<(&str, Arc<dyn Transport>)> =
        if TransportKind::from_env() == TransportKind::InProc {
            vec![("inproc", Arc::new(InProcTransport::new()))]
        } else {
            vec![
                ("tcp_loopback", Arc::new(TcpTransport::new())),
                ("inproc", Arc::new(InProcTransport::new())),
            ]
        };

    let mut g = c.benchmark_group("wire_failover");
    g.sample_size(20);
    for (name, transport) in transports {
        // A once-bound, now-dropped listener: its address refuses dials
        // exactly like a killed storage node's.
        let dead_addr = transport
            .listen(&transport.any_addr())
            .unwrap()
            .addr()
            .to_string();
        let live = StorageService::spawn(
            Arc::clone(&transport),
            Arc::clone(&tier),
            NetworkModel::local(),
        )
        .unwrap();
        // Every node homed on server 0 (the dead address); the live
        // replica at (0 + 1) serves the identical tier.
        let addrs = vec![dead_addr, live.addr().to_string()];
        let partitioner: Arc<dyn Partitioner> = Arc::new(HashPartitioner::new(1));
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    MultiplexedStorageSource::new(
                        Arc::clone(&transport),
                        &addrs,
                        Arc::clone(&partitioner),
                    )
                    .with_replication(2)
                    .with_retry(retry)
                },
                |mut source| {
                    let got = source.fetch_batch(&frontier);
                    assert_eq!(got.len(), frontier.len());
                    got
                },
                BatchSize::SmallInput,
            )
        });
        live.shutdown();
    }
    g.finish();
}

fn trace_overhead(c: &mut Criterion) {
    if !criterion::group_enabled("trace_overhead") {
        return;
    }
    use grouting_core::live::{run_cluster, LiveConfig};
    use grouting_core::route::RoutingKind;
    use grouting_core::storage::{Preset, StorageTier};
    use grouting_core::trace::{Stage, TraceLevel};
    use grouting_core::wire::{FetchMode, TransportKind};
    use std::sync::Arc;

    // The tracing layer's acceptance gate: the same small wire cluster run
    // end to end with tracing off vs stats. "off" must be the exact
    // pre-tracing fast path (no trace blocks on the wire, no clock reads
    // in the reactor); "stats" pays per-frame timestamps, per-stage
    // histogram records, and busy/idle clocking — the gate holds that bill
    // to a few percent of wall time. Runs on whatever transport the
    // sandbox offers: the comparison is tracing-on vs tracing-off on the
    // SAME fabric, so it is meaningful over channels too.
    let graph = bench_graph();
    let tier = Arc::new(StorageTier::new(Arc::new(HashPartitioner::new(3))));
    tier.load_graph(&graph).unwrap();
    let queries: Vec<Query> = (0..48u32)
        .map(|i| Query::NeighborAggregation {
            node: NodeId::new((i % 12) * 97 + 1),
            hops: 2,
            label: None,
        })
        .collect();
    let cfg_at = |level: TraceLevel| LiveConfig {
        processors: 4,
        stealing: false,
        cache_capacity: 8 << 20,
        overlap: 2,
        trace: level,
        ..LiveConfig::paper_default(4, RoutingKind::Hash)
    };
    let transport = TransportKind::from_env();
    let run_at = |level: TraceLevel| {
        run_cluster(
            Arc::clone(&tier),
            None,
            None,
            &queries,
            &cfg_at(level),
            transport,
            Preset::Local,
            FetchMode::Batched,
        )
        .expect("cluster run completes")
    };

    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(10);
    for (name, level) in [("off", TraceLevel::Off), ("stats", TraceLevel::Stats)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let report = run_at(level);
                assert_eq!(report.results.len(), queries.len());
                std::hint::black_box(report.wall_ns)
            })
        });
    }
    g.finish();

    // Publish the per-stage latency percentiles of one instrumented run
    // next to the timings, so the uploaded artifact carries the stage
    // breakdown (where a query's time actually goes) alongside the
    // overhead medians.
    let trace = run_at(TraceLevel::Stats)
        .trace
        .expect("stats run returns a trace");
    for stage in Stage::ALL {
        let h = trace.stages.stage(stage);
        if h.count() == 0 {
            continue;
        }
        criterion::record_metric(
            &format!("trace_overhead/{stage}_p50_ns"),
            h.p50().unwrap_or(0) as f64,
        );
        criterion::record_metric(
            &format!("trace_overhead/{stage}_p99_ns"),
            h.p99().unwrap_or(0) as f64,
        );
        criterion::record_metric(
            &format!("trace_overhead/{stage}_p999_ns"),
            h.p999().unwrap_or(0) as f64,
        );
    }
    // The results file prints one decimal place, so the busy fraction is
    // published as a percentage (a 2% loop would round to 0.0 as a ratio).
    criterion::record_metric(
        "trace_overhead/reactor_busy_pct",
        trace.reactor.busy_ratio() * 100.0,
    );
    criterion::record_metric(
        "trace_overhead/reactor_frames_in",
        trace.reactor.frames_in as f64,
    );
    criterion::record_metric(
        "trace_overhead/reactor_busy_ns",
        trace.reactor.busy_ns as f64,
    );
    criterion::record_metric(
        "trace_overhead/reactor_idle_ns",
        trace.reactor.idle_ns as f64,
    );
}

fn obs_overhead(c: &mut Criterion) {
    if !criterion::group_enabled("obs_overhead") {
        return;
    }
    use grouting_core::engine::EngineAssets;
    use grouting_core::live::LiveConfig;
    use grouting_core::route::RoutingKind;
    use grouting_core::storage::StorageTier;
    use grouting_core::wire::{launch_cluster, ClusterConfig, FetchMode, ObsConfig, TransportKind};
    use std::sync::Arc;

    if TransportKind::from_env() == TransportKind::InProc {
        // The scrape endpoint is a socket feature; without loopback the
        // sampled run cannot bind one, so the comparison loses its
        // subject — skip rather than publish misleading numbers.
        return;
    }

    // The observability acceptance gate: the same wire cluster run with
    // the sampler off vs sampling at the default cadence with live scrape
    // endpoints bound on every node. "off" must be the untouched fast
    // path (no registry, no clock reads beyond the router's own); "on"
    // pays registry refills, flight-recorder diffs, `ObsPush` frames, and
    // endpoint polling — the gate holds that bill to a few percent.
    let graph = bench_graph();
    let tier = Arc::new(StorageTier::new(Arc::new(HashPartitioner::new(3))));
    tier.load_graph(&graph).unwrap();
    let queries: Vec<Query> = (0..48u32)
        .map(|i| Query::NeighborAggregation {
            node: NodeId::new((i % 12) * 97 + 1),
            hops: 2,
            label: None,
        })
        .collect();
    let cfg = LiveConfig {
        processors: 4,
        stealing: false,
        cache_capacity: 8 << 20,
        overlap: 2,
        ..LiveConfig::paper_default(4, RoutingKind::Hash)
    };
    let run_with = |obs: &ObsConfig| {
        let assets = EngineAssets::new(Arc::clone(&tier));
        let config = ClusterConfig::new(cfg.engine_config(), TransportKind::Tcp)
            .with_fetch(FetchMode::Batched)
            .with_obs(obs.clone());
        launch_cluster(&assets, &queries, &config).expect("cluster run completes")
    };
    let sampled = ObsConfig {
        metrics_addr: Some("127.0.0.1:0".to_string()),
        dump: false,
        sample_every_ns: grouting_core::obs::DEFAULT_SAMPLE_EVERY_NS,
    };

    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(10);
    for (name, obs) in [("off", ObsConfig::disabled()), ("sampled", sampled)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let run = run_with(&obs);
                assert_eq!(run.results.len(), queries.len());
                std::hint::black_box(run.wall_ns)
            })
        });
    }
    g.finish();

    // Publish the heat totals of one sampled run next to the timings, so
    // the artifact carries the workload-skew signal the heatmaps exist
    // for alongside the overhead medians.
    let run = run_with(&ObsConfig::disabled());
    criterion::record_metric(
        "obs_overhead/partition_demand_total",
        run.snapshot.partition_heat.total_demand() as f64,
    );
    let hottest = run
        .snapshot
        .partition_heat
        .cells()
        .iter()
        .map(|c| c.demand)
        .max()
        .unwrap_or(0);
    criterion::record_metric("obs_overhead/partition_demand_peak", hottest as f64);
}

criterion_group!(
    benches,
    murmur,
    lru,
    bfs,
    routing_decision,
    partitioning,
    simplex,
    wire_frames,
    wire_round_trip,
    wire_frontier_fetch,
    reactor_dispatch_latency,
    reactor_idle_cpu_1k,
    wire_overlap_throughput,
    wire_prefetch,
    wire_failover,
    trace_overhead,
    obs_overhead
);
criterion_main!(benches);
