//! Criterion micro-benchmarks of the performance-critical primitives:
//! MurmurHash3, LRU operations, BFS traversal, per-strategy routing
//! decisions, and the Simplex-Downhill minimiser.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use grouting_core::cache::{Cache, LruCache};
use grouting_core::embed::landmarks::{LandmarkConfig, Landmarks};
use grouting_core::embed::simplex::{minimize, SimplexOptions};
use grouting_core::embed::{EmbeddingConfig, ProcessorDistanceTable};
use grouting_core::gen::community::{generate, CommunityConfig};
use grouting_core::graph::traversal::{bfs_distances, Direction};
use grouting_core::graph::NodeId;
use grouting_core::partition::murmur3::{hash_node, murmur3_x64_128};
use grouting_core::partition::{HashPartitioner, Partitioner};
use grouting_core::query::Query;
use grouting_core::route::{EmbedRouter, Strategy};

fn bench_graph() -> grouting_core::graph::CsrGraph {
    generate(
        &CommunityConfig {
            nodes: 20_000,
            community_size: 200,
            edges: 200_000,
            cross_fraction: 0.05,
            shortcut_fraction: 0.01,
        },
        7,
    )
}

fn murmur(c: &mut Criterion) {
    let mut g = c.benchmark_group("murmur3");
    g.bench_function("x86_32_node_id", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            std::hint::black_box(hash_node(i, 0x9747_b28c))
        })
    });
    g.bench_function("x64_128_64B", |b| {
        let data = [0xABu8; 64];
        b.iter(|| std::hint::black_box(murmur3_x64_128(&data, 1)))
    });
    g.finish();
}

fn lru(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru");
    g.bench_function("insert_evict", |b| {
        b.iter_batched(
            || LruCache::<u32, u64>::new(64 * 100),
            |mut cache| {
                for i in 0..1000u32 {
                    cache.insert(i, i as u64, 64);
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("hit_get", |b| {
        let mut cache = LruCache::<u32, u64>::new(1 << 20);
        for i in 0..1000u32 {
            cache.insert(i, i as u64, 64);
        }
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 1000;
            std::hint::black_box(cache.get(&i).copied())
        })
    });
    g.finish();
}

fn bfs(c: &mut Criterion) {
    let graph = bench_graph();
    let mut g = c.benchmark_group("bfs");
    g.sample_size(20);
    g.bench_function("full_bfs_20k_nodes", |b| {
        b.iter(|| std::hint::black_box(bfs_distances(&graph, NodeId::new(0), Direction::Both)))
    });
    g.finish();
}

fn routing_decision(c: &mut Criterion) {
    let graph = bench_graph();
    let landmarks = Landmarks::build(
        &graph,
        &LandmarkConfig {
            count: 32,
            min_separation: 3,
        },
    );
    let table = ProcessorDistanceTable::build(&landmarks, 7);
    let embedding = std::sync::Arc::new(grouting_core::embed::embedding::Embedding::build(
        &landmarks,
        &EmbeddingConfig {
            dimensions: 10,
            landmark_sweeps: 1,
            landmark_iters: 100,
            node_iters: 30,
            nearest_landmarks: 8,
            seed: 1,
        },
    ));
    let loads = vec![3usize, 1, 4, 1, 5, 9, 2];
    let up = vec![true; 7];
    let strategies: Vec<(&str, Strategy)> = vec![
        ("hash", Strategy::Hash),
        ("landmark", Strategy::Landmark(table)),
        (
            "embed",
            Strategy::Embed(EmbedRouter::new(embedding, 7, 0.9, 1)),
        ),
    ];
    let mut g = c.benchmark_group("routing_decision");
    for (name, strategy) in &strategies {
        g.bench_function(name, |b| {
            let mut i = 0u32;
            b.iter(|| {
                i = (i + 1) % 20_000;
                let q = Query::NeighborAggregation {
                    node: NodeId::new(i),
                    hops: 2,
                    label: None,
                };
                std::hint::black_box(strategy.preferred(&q, &loads, &up, 20.0))
            })
        });
    }
    g.finish();
}

fn partitioning(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition");
    g.bench_function("hash_assign", |b| {
        let p = HashPartitioner::new(4);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            std::hint::black_box(p.assign(NodeId::new(i)))
        })
    });
    g.finish();
}

fn simplex(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplex");
    g.bench_function("rosenbrock_2d", |b| {
        b.iter(|| {
            minimize(
                |x| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
                &[-1.2, 1.0],
                &SimplexOptions {
                    max_iters: 200,
                    tolerance: 1e-9,
                    initial_step: 0.5,
                },
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    murmur,
    lru,
    bfs,
    routing_decision,
    partitioning,
    simplex
);
criterion_main!(benches);
