//! Figure 10: robustness with graph updates.
//!
//! Preprocessing runs on an induced subgraph covering 20 %–100 % of the
//! nodes; queries run on the *complete* graph. Nodes outside the
//! preprocessed subgraph get their landmark rows / coordinates computed
//! incrementally from the full graph (the paper's update rule), while the
//! originally preprocessed nodes keep their now-stale information.
//!
//! Paper shape: smart routing degrades gracefully — at 80 % coverage the
//! response time is within a few percent of full preprocessing, and only at
//! 20 % does it approach the hash baseline.

use std::sync::Arc;

use grouting_bench::{bench_graph, paper_workload, PAPER_PROCESSORS, PAPER_STORAGE};
use grouting_core::embed::embedding::{Embedding, EmbeddingConfig};
use grouting_core::embed::landmarks::{LandmarkConfig, Landmarks};
use grouting_core::gen::ProfileName;
use grouting_core::graph::subgraph::{fraction_mask, induced_subgraph};
use grouting_core::metrics::TableReport;
use grouting_core::partition::HashPartitioner;
use grouting_core::prelude::*;
use grouting_core::sim::{simulate, SimAssets, SimConfig};
use grouting_core::storage::StorageTier;

fn main() {
    let graph = bench_graph(ProfileName::WebGraph);
    let n = graph.node_count();
    let landmark_cfg = LandmarkConfig {
        count: 96.min(((n as f64).sqrt() as usize).max(4)),
        min_separation: 3,
    };
    let embed_cfg = EmbeddingConfig::default();

    // The storage tier always holds the full graph.
    let tier = Arc::new(StorageTier::new(Arc::new(HashPartitioner::new(
        PAPER_STORAGE,
    ))));
    tier.load_graph(&graph).expect("graph fits");

    let mut t = TableReport::new(
        "Figure 10: response time vs preprocessed fraction of the graph (WebGraph)",
        &["preprocessed_%", "routing", "response_ms", "hit_rate_%"],
    );

    for pct in [20u32, 40, 60, 80, 100] {
        // Preprocess on the induced subgraph...
        let mask = fraction_mask(&graph, pct as f64 / 100.0, 0xF16);
        let sub = induced_subgraph(&graph, |v| mask[v.index()]);
        let stale = Landmarks::build(&sub, &landmark_cfg);
        // ...then incrementally fill rows for nodes outside it from the
        // full graph, leaving preprocessed rows untouched (stale).
        let fresh = Landmarks::for_nodes(&graph, stale.nodes.clone(), landmark_cfg.min_separation);
        let mut merged = stale.clone();
        for (row_stale, row_fresh) in merged.dist.iter_mut().zip(&fresh.dist) {
            for v in 0..n {
                if !mask[v] {
                    row_stale[v] = row_fresh[v];
                }
            }
        }
        let embedding = Embedding::build(&merged, &embed_cfg);

        let assets = SimAssets {
            graph: Arc::clone(&graph),
            tier: Arc::clone(&tier),
            landmarks: Arc::new(merged),
            embedding: Arc::new(embedding),
            timings: Default::default(),
        };
        let queries = paper_workload(&assets, 2, 2);
        for routing in [RoutingKind::Hash, RoutingKind::Landmark, RoutingKind::Embed] {
            let cfg = SimConfig {
                cache_capacity: grouting_bench::default_cache_bytes(&assets),
                ..SimConfig::paper_default(PAPER_PROCESSORS, routing)
            };
            let r = simulate(&assets, &queries, &cfg);
            t.row(vec![
                (pct as usize).into(),
                routing.to_string().into(),
                r.mean_response_ms().into(),
                (r.hit_rate() * 100.0).into(),
            ]);
        }
    }
    t.print();
}
