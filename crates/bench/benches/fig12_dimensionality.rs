//! Figure 12: impact of embedding dimensionality.
//!
//! (a) mean relative distance error (Eq. 4) over 2-hop hotspot pairs vs D;
//! (b) embed-routing response time vs D against the hash baseline.
//!
//! Paper shape: error falls with D and saturates around D = 10; response
//! time is minimised near D = 10 (better routing) and creeps up at high D
//! (router decision cost grows with D).

use std::sync::Arc;

use grouting_bench::{bench_assets, default_cache_bytes, paper_workload, PAPER_PROCESSORS};
use grouting_core::embed::embedding::{Embedding, EmbeddingConfig};
use grouting_core::embed::error::{hotspot_pairs, mean_relative_error};
use grouting_core::gen::ProfileName;
use grouting_core::metrics::TableReport;
use grouting_core::prelude::*;
use grouting_core::sim::{simulate, SimAssets, SimConfig};

fn main() {
    let assets = bench_assets(ProfileName::WebGraph);
    let queries = paper_workload(&assets, 2, 2);
    let cache = default_cache_bytes(&assets);

    // The evaluation pairs of Figure 12(a): nodes within 2 hops of hotspot
    // centres, with exact hop distances.
    let centers: Vec<_> = (0..50)
        .map(|i| grouting_core::graph::NodeId::new((i * assets.graph.node_count() / 50) as u32))
        .collect();
    let pairs = hotspot_pairs(&assets.graph, &centers, 2, 20);

    let mut a = TableReport::new(
        "Figure 12(a): relative error vs dimensions (2-hop hotspot pairs)",
        &["dimensions", "relative_error"],
    );
    let mut b = TableReport::new(
        "Figure 12(b): response time vs dimensions (WebGraph)",
        &["dimensions", "routing", "response_ms"],
    );

    // Hash reference line (dimension-independent).
    let hash = simulate(
        &assets,
        &queries,
        &SimConfig {
            cache_capacity: cache,
            ..SimConfig::paper_default(PAPER_PROCESSORS, RoutingKind::Hash)
        },
    );

    for d in [2usize, 5, 10, 15, 20, 30] {
        let embedding = Embedding::build(
            &assets.landmarks,
            &EmbeddingConfig {
                dimensions: d,
                ..EmbeddingConfig::default()
            },
        );
        a.row(vec![
            d.into(),
            mean_relative_error(&embedding, &pairs).into(),
        ]);

        let d_assets = SimAssets {
            embedding: Arc::new(embedding),
            ..assets.clone()
        };
        // Router decision time grows with D: fold it into the cost model
        // the same way the real router pays O(P·D) per decision.
        let mut cfg = SimConfig {
            cache_capacity: cache,
            ..SimConfig::paper_default(PAPER_PROCESSORS, RoutingKind::Embed)
        };
        cfg.cost.router_decision_ns += (d as u64) * 60;
        let r = simulate(&d_assets, &queries, &cfg);
        b.row(vec![d.into(), "Embed".into(), r.mean_response_ms().into()]);
        b.row(vec![
            d.into(),
            "Hash".into(),
            hash.mean_response_ms().into(),
        ]);
    }
    a.print();
    b.print();
}
