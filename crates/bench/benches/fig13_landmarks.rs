//! Figure 13: impact of landmark count and separation.
//!
//! (a) response time vs number of landmarks (4–128) for both smart
//!     schemes — generally "the more, the better", with diminishing returns
//!     traded against preprocessing time;
//! (b) response time vs minimum landmark separation (1–5 hops) — a mild
//!     effect in the paper.

use std::sync::Arc;

use grouting_bench::{
    bench_graph, default_cache_bytes, paper_workload, PAPER_PROCESSORS, PAPER_STORAGE,
};
use grouting_core::embed::embedding::{Embedding, EmbeddingConfig};
use grouting_core::embed::landmarks::{LandmarkConfig, Landmarks};
use grouting_core::gen::ProfileName;
use grouting_core::metrics::TableReport;
use grouting_core::partition::HashPartitioner;
use grouting_core::prelude::*;
use grouting_core::sim::{simulate, SimAssets, SimConfig};
use grouting_core::storage::StorageTier;

fn run_with(
    graph: &Arc<grouting_core::graph::CsrGraph>,
    tier: &Arc<StorageTier>,
    landmark_cfg: &LandmarkConfig,
) -> Vec<(RoutingKind, f64)> {
    let landmarks = Arc::new(Landmarks::build(graph, landmark_cfg));
    let embedding = Arc::new(Embedding::build(&landmarks, &EmbeddingConfig::default()));
    let assets = SimAssets {
        graph: Arc::clone(graph),
        tier: Arc::clone(tier),
        landmarks,
        embedding,
        timings: Default::default(),
    };
    let queries = paper_workload(&assets, 2, 2);
    let cache = default_cache_bytes(&assets);
    [RoutingKind::Hash, RoutingKind::Landmark, RoutingKind::Embed]
        .into_iter()
        .map(|routing| {
            let cfg = SimConfig {
                cache_capacity: cache,
                ..SimConfig::paper_default(PAPER_PROCESSORS, routing)
            };
            let r = simulate(&assets, &queries, &cfg);
            (routing, r.mean_response_ms())
        })
        .collect()
}

fn main() {
    let graph = bench_graph(ProfileName::WebGraph);
    let tier = Arc::new(StorageTier::new(Arc::new(HashPartitioner::new(
        PAPER_STORAGE,
    ))));
    tier.load_graph(&graph).expect("graph fits");

    let mut a = TableReport::new(
        "Figure 13(a): response time vs number of landmarks (WebGraph)",
        &["landmarks", "routing", "response_ms"],
    );
    for count in [4usize, 8, 16, 32, 64, 96, 128] {
        for (routing, ms) in run_with(
            &graph,
            &tier,
            &LandmarkConfig {
                count,
                min_separation: 3,
            },
        ) {
            a.row(vec![count.into(), routing.to_string().into(), ms.into()]);
        }
    }
    a.print();

    let mut b = TableReport::new(
        "Figure 13(b): response time vs minimum landmark separation (WebGraph)",
        &["separation_hops", "routing", "response_ms"],
    );
    for sep in 1u32..=5 {
        for (routing, ms) in run_with(
            &graph,
            &tier,
            &LandmarkConfig {
                count: 96,
                min_separation: sep,
            },
        ) {
            b.row(vec![
                (sep as usize).into(),
                routing.to_string().into(),
                ms.into(),
            ]);
        }
    }
    b.print();
}
