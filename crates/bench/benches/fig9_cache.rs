//! Figure 9: impact of cache sizes.
//!
//! (a) response time vs per-processor cache capacity;
//! (b) cache hits vs capacity;
//! (c) the minimum cache at which each routing scheme beats the no-cache
//!     response time (the break-even for "is a cache worth having").
//!
//! Paper shape: below a threshold the cache is pure overhead (worse than
//! no-cache); past it response time falls steeply then flattens once
//! nothing is evicted; smart routing reaches break-even with far less
//! cache than the baselines.

use grouting_bench::{bench_assets, paper_workload, PAPER_PROCESSORS};
use grouting_core::gen::ProfileName;
use grouting_core::metrics::TableReport;
use grouting_core::prelude::*;
use grouting_core::sim::{simulate, SimConfig};

fn capacities() -> Vec<usize> {
    // 1/64 MiB-equivalents scaled to the bench graph: sweep from "useless"
    // to "holds everything".
    vec![
        16 << 10,
        64 << 10,
        256 << 10,
        1 << 20,
        4 << 20,
        16 << 20,
        64 << 20,
    ]
}

fn main() {
    let assets = bench_assets(ProfileName::WebGraph);
    let queries = paper_workload(&assets, 2, 2);

    // The no-cache break-even line.
    let nc = simulate(
        &assets,
        &queries,
        &SimConfig::paper_default(PAPER_PROCESSORS, RoutingKind::NoCache),
    );
    let no_cache_ms = nc.mean_response_ms();
    println!("no-cache response time: {no_cache_ms:.2} ms (the break-even line)\n");

    let mut a = TableReport::new(
        "Figure 9(a,b): response time and cache hits vs cache capacity (WebGraph)",
        &[
            "capacity",
            "routing",
            "response_ms",
            "cache_hits",
            "evictions",
        ],
    );
    let mut break_even: Vec<(RoutingKind, Option<usize>)> = Vec::new();
    for routing in [
        RoutingKind::NextReady,
        RoutingKind::Hash,
        RoutingKind::Landmark,
        RoutingKind::Embed,
    ] {
        let mut first_win: Option<usize> = None;
        for cap in capacities() {
            let cfg = SimConfig {
                cache_capacity: cap,
                ..SimConfig::paper_default(PAPER_PROCESSORS, routing)
            };
            let r = simulate(&assets, &queries, &cfg);
            if first_win.is_none() && r.mean_response_ms() <= no_cache_ms {
                first_win = Some(cap);
            }
            a.row(vec![
                grouting_bench::human_bytes(cap as u64).into(),
                routing.to_string().into(),
                r.mean_response_ms().into(),
                r.cache_hits.into(),
                r.evictions.into(),
            ]);
        }
        break_even.push((routing, first_win));
    }
    a.print();

    let mut c = TableReport::new(
        "Figure 9(c): min cache capacity to reach the no-cache response time",
        &["routing", "min_capacity"],
    );
    for (routing, cap) in break_even {
        c.row(vec![
            routing.to_string().into(),
            match cap {
                Some(b) => grouting_bench::human_bytes(b as u64).into(),
                None => "not reached".into(),
            },
        ]);
    }
    c.print();
}
