//! Table 2: preprocessing times.
//!
//! The paper reports, on WebGraph: ~35 s per-landmark BFS, ~36 s landmark
//! embedding, ~1 s per-node embedding (both embedding stages
//! parallelisable). This bench measures the same three stages on the scaled
//! WebGraph profile.

use grouting_bench::bench_assets;
use grouting_core::gen::ProfileName;
use grouting_core::metrics::TableReport;

fn main() {
    let assets = bench_assets(ProfileName::WebGraph);
    let lm = &assets.landmarks;
    let n = assets.graph.node_count() as f64;

    let mut t = TableReport::new(
        "Table 2: preprocessing times, WebGraph profile",
        &["stage", "total_ms", "per_unit"],
    );
    t.row(vec![
        "landmark BFS (all landmarks)".into(),
        (assets.timings.landmark_ns as f64 / 1e6).into(),
        format!(
            "{:.2} ms/landmark",
            assets.timings.landmark_ns as f64 / 1e6 / lm.len().max(1) as f64
        )
        .into(),
    ]);
    t.row(vec![
        "embed landmarks (simplex)".into(),
        (assets.timings.embed_landmarks_ns as f64 / 1e6).into(),
        format!(
            "{:.3} ms/landmark",
            assets.timings.embed_landmarks_ns as f64 / 1e6 / lm.len().max(1) as f64
        )
        .into(),
    ]);
    t.row(vec![
        "embed nodes (simplex, parallel)".into(),
        (assets.timings.embed_nodes_ns as f64 / 1e6).into(),
        format!(
            "{:.4} ms/node",
            assets.timings.embed_nodes_ns as f64 / 1e6 / n
        )
        .into(),
    ]);
    t.print();
    println!(
        "(landmarks: {}, nodes: {}, edges: {})",
        lm.len(),
        assets.graph.node_count(),
        assets.graph.edge_count()
    );
}
