//! Figure 15: 2-hop hotspot, h-hop traversal workloads (h = 1, 2, 3).
//!
//! Paper shape: smart routing wins at every h, but the margin narrows at
//! h = 3 — deeper traversals touch so much data that computation dominates
//! the response time and cache hits matter relatively less.

use grouting_bench::{bench_assets, default_cache_bytes, paper_workload, PAPER_PROCESSORS};
use grouting_core::gen::ProfileName;
use grouting_core::metrics::TableReport;
use grouting_core::prelude::*;
use grouting_core::sim::{simulate, SimConfig};

fn main() {
    let assets = bench_assets(ProfileName::WebGraph);
    let cache = default_cache_bytes(&assets);

    let mut t = TableReport::new(
        "Figure 15: 2-hop hotspot, h-hop traversal (WebGraph)",
        &[
            "h",
            "routing",
            "response_ms",
            "hit_rate_%",
            "smart_vs_hash_%",
        ],
    );
    for h in [1u32, 2, 3] {
        let queries = paper_workload(&assets, 2, h);
        let mut hash_ms = 0.0;
        for routing in RoutingKind::ALL {
            let cfg = SimConfig {
                cache_capacity: cache,
                ..SimConfig::paper_default(PAPER_PROCESSORS, routing)
            };
            let rep = simulate(&assets, &queries, &cfg);
            if routing == RoutingKind::Hash {
                hash_ms = rep.mean_response_ms();
            }
            let gain = if hash_ms > 0.0 && routing.is_smart() {
                100.0 * (hash_ms - rep.mean_response_ms()) / hash_ms
            } else {
                0.0
            };
            t.row(vec![
                (h as usize).into(),
                routing.to_string().into(),
                rep.mean_response_ms().into(),
                (rep.hit_rate() * 100.0).into(),
                gain.into(),
            ]);
        }
    }
    t.print();
}
