//! Figure 14: r-hop hotspot, 2-hop traversal workloads (r = 1, 2).
//!
//! (a) response time per routing scheme; (b,c) cache hits and misses.
//! Paper shape: smart routing beats the baselines at both radii because it
//! captures topology-aware locality — more hits, lower response times.

use grouting_bench::{bench_assets, default_cache_bytes, paper_workload, PAPER_PROCESSORS};
use grouting_core::gen::ProfileName;
use grouting_core::metrics::TableReport;
use grouting_core::prelude::*;
use grouting_core::sim::{simulate, SimConfig};

fn main() {
    let assets = bench_assets(ProfileName::WebGraph);
    let cache = default_cache_bytes(&assets);

    let mut t = TableReport::new(
        "Figure 14: r-hop hotspot, 2-hop traversal (WebGraph)",
        &[
            "r",
            "routing",
            "response_ms",
            "cache_hits",
            "cache_misses",
            "hit_rate_%",
        ],
    );
    for r in [1u32, 2] {
        let queries = paper_workload(&assets, r, 2);
        for routing in RoutingKind::ALL {
            let cfg = SimConfig {
                cache_capacity: cache,
                ..SimConfig::paper_default(PAPER_PROCESSORS, routing)
            };
            let rep = simulate(&assets, &queries, &cfg);
            t.row(vec![
                (r as usize).into(),
                routing.to_string().into(),
                rep.mean_response_ms().into(),
                rep.cache_hits.into(),
                rep.cache_misses.into(),
                (rep.hit_rate() * 100.0).into(),
            ]);
        }
    }
    t.print();
}
