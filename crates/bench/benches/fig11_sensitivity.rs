//! Figure 11: load factor and smoothing parameter sensitivity.
//!
//! (a) throughput vs load factor (0.01–10⁴): small values drown the smart
//!     distance in load balancing, huge values disable load balancing; the
//!     paper finds the peak at 10–20.
//! (b) response time vs α for embed routing (0–1), against the hash
//!     baseline.

use grouting_bench::{bench_assets, default_cache_bytes, paper_workload, PAPER_PROCESSORS};
use grouting_core::gen::ProfileName;
use grouting_core::metrics::TableReport;
use grouting_core::prelude::*;
use grouting_core::sim::{simulate, SimConfig};

fn main() {
    let assets = bench_assets(ProfileName::WebGraph);
    let queries = paper_workload(&assets, 2, 2);
    let cache = default_cache_bytes(&assets);

    let mut a = TableReport::new(
        "Figure 11(a): throughput vs load factor (WebGraph)",
        &["load_factor", "routing", "throughput_qps"],
    );
    for lf in [0.01, 0.1, 1.0, 10.0, 20.0, 100.0, 1_000.0, 10_000.0] {
        for routing in [RoutingKind::Hash, RoutingKind::Landmark, RoutingKind::Embed] {
            let cfg = SimConfig {
                cache_capacity: cache,
                load_factor: lf,
                ..SimConfig::paper_default(PAPER_PROCESSORS, routing)
            };
            let r = simulate(&assets, &queries, &cfg);
            a.row(vec![
                lf.into(),
                routing.to_string().into(),
                r.throughput_qps().into(),
            ]);
        }
    }
    a.print();

    let mut b = TableReport::new(
        "Figure 11(b): response time vs smoothing parameter alpha (WebGraph)",
        &["alpha", "routing", "response_ms"],
    );
    for alpha in [0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
        for routing in [RoutingKind::Embed, RoutingKind::Hash] {
            let cfg = SimConfig {
                cache_capacity: cache,
                alpha,
                ..SimConfig::paper_default(PAPER_PROCESSORS, routing)
            };
            let r = simulate(&assets, &queries, &cfg);
            b.row(vec![
                alpha.into(),
                routing.to_string().into(),
                r.mean_response_ms().into(),
            ]);
        }
    }
    b.print();
    println!("(this implementation's optimum sits at high alpha — slow-moving");
    println!(" means — because scaled-down hotspot runs are short; see EXPERIMENTS.md)");
}
