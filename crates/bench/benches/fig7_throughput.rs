//! Figure 7: throughput comparison with distributed graph systems.
//!
//! gRouting (Infiniband + embed routing, 1 router / 7 processors / 4
//! storage servers, *hash* partitioning) and gRouting-E (same over
//! Ethernet) versus the two coupled baselines on their 12-machine
//! configuration: SEDGE/Giraph (BSP over METIS-style multilevel edge-cut
//! partitions) and PowerGraph (GAS over greedy vertex-cut). The paper finds
//! gRouting-E 5–10× and gRouting 10–35× the baselines' throughput; the
//! partitioning-time column shows the offline cost the baselines pay on
//! top (SEDGE's repartitioning took ~1 hour on the real WebGraph).

use std::time::Instant;

use grouting_bench::{bench_assets, bench_sim_config, paper_workload, PAPER_PROCESSORS};
use grouting_core::baseline::{run_bsp, run_gas, BspConfig, GasConfig};
use grouting_core::gen::ProfileName;
use grouting_core::metrics::TableReport;
use grouting_core::partition::multilevel::{partition, MultilevelConfig};
use grouting_core::partition::vertexcut::greedy_vertex_cut;
use grouting_core::prelude::*;
use grouting_core::sim::{simulate, CostModel};

const COUPLED_MACHINES: usize = 12;

fn main() {
    let mut t = TableReport::new(
        "Figure 7: throughput (queries/second), 2-hop hotspot, 2-hop traversal",
        &[
            "dataset",
            "system",
            "throughput_qps",
            "vs_SEDGE",
            "partition_time_ms",
        ],
    );

    for name in [
        ProfileName::WebGraph,
        ProfileName::Memetracker,
        ProfileName::Freebase,
    ] {
        let assets = bench_assets(name);
        let queries = paper_workload(&assets, 2, 2);

        // SEDGE/Giraph: BSP over multilevel edge-cut partitions.
        let t0 = Instant::now();
        let ml = partition(&assets.graph, &MultilevelConfig::new(COUPLED_MACHINES));
        let ml_ms = t0.elapsed().as_millis() as u64;
        let (bsp_report, _) = run_bsp(
            &assets.graph,
            &ml,
            &queries,
            &BspConfig::default(),
            ml_ms * 1_000_000,
        );
        let sedge_qps = bsp_report.throughput_qps();

        // PowerGraph: GAS over greedy vertex-cut.
        let t1 = Instant::now();
        let vc = greedy_vertex_cut(&assets.graph, COUPLED_MACHINES);
        let vc_ms = t1.elapsed().as_millis() as u64;
        let (gas_report, _) = run_gas(
            &assets.graph,
            &vc,
            &queries,
            &GasConfig::default(),
            vc_ms * 1_000_000,
        );

        // gRouting-E: decoupled, hash partitioning, Ethernet.
        let eth = simulate(
            &assets,
            &queries,
            &grouting_core::sim::SimConfig {
                cost: CostModel::ethernet(),
                ..bench_sim_config(&assets, PAPER_PROCESSORS, RoutingKind::Embed)
            },
        );
        // gRouting: the same over Infiniband RDMA.
        let ib = simulate(
            &assets,
            &queries,
            &bench_sim_config(&assets, PAPER_PROCESSORS, RoutingKind::Embed),
        );

        for (system, qps, part_ms) in [
            ("SEDGE/Giraph", sedge_qps, ml_ms),
            ("PowerGraph", gas_report.throughput_qps(), vc_ms),
            ("gRouting-E", eth.throughput_qps(), 0),
            ("gRouting", ib.throughput_qps(), 0),
        ] {
            t.row(vec![
                name.as_str().into(),
                system.into(),
                qps.into(),
                (qps / sedge_qps.max(1e-9)).into(),
                part_ms.into(),
            ]);
        }
    }
    t.print();
    println!("(paper shape: gRouting-E 5-10x, gRouting 10-35x the coupled systems)");
}
