//! The routing strategies of §3.3 (baselines) and §3.4 (smart).

use grouting_embed::ProcessorDistanceTable;
use grouting_query::Query;

use crate::ema::EmbedRouter;

/// Which routing scheme a cluster runs — used in configs and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingKind {
    /// Next-ready baseline with no processor caches at all (§4.1).
    NoCache,
    /// Next-ready: any idle processor takes the next query (§3.3.1).
    NextReady,
    /// Modulo hash of the query node id (Eq. 1, §3.3.2).
    Hash,
    /// Landmark routing over the `d(u, p)` table (§3.4.1).
    Landmark,
    /// Embed routing over coordinates and EMA means (§3.4.2).
    Embed,
}

impl RoutingKind {
    /// All five schemes in the paper's comparison order.
    pub const ALL: [RoutingKind; 5] = [
        RoutingKind::NoCache,
        RoutingKind::NextReady,
        RoutingKind::Hash,
        RoutingKind::Landmark,
        RoutingKind::Embed,
    ];

    /// Whether processors should run with caches enabled.
    pub fn uses_cache(&self) -> bool {
        !matches!(self, RoutingKind::NoCache)
    }

    /// Whether this is one of the paper's smart schemes.
    pub fn is_smart(&self) -> bool {
        matches!(self, RoutingKind::Landmark | RoutingKind::Embed)
    }
}

impl std::fmt::Display for RoutingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RoutingKind::NoCache => "NoCache",
            RoutingKind::NextReady => "NextReady",
            RoutingKind::Hash => "Hash",
            RoutingKind::Landmark => "Landmark",
            RoutingKind::Embed => "Embed",
        };
        write!(f, "{s}")
    }
}

/// A routing strategy instance, holding whatever state its scheme needs.
pub enum Strategy {
    /// Next-ready dispatch (also used for the no-cache control).
    NextReady {
        /// True when this instance represents the no-cache control.
        no_cache: bool,
    },
    /// Modulo hash (Eq. 1).
    Hash,
    /// Landmark routing.
    Landmark(ProcessorDistanceTable),
    /// Embed routing.
    Embed(EmbedRouter),
}

impl std::fmt::Debug for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Strategy::{}", self.kind())
    }
}

impl Strategy {
    /// The scheme this instance implements.
    pub fn kind(&self) -> RoutingKind {
        match self {
            Strategy::NextReady { no_cache: true } => RoutingKind::NoCache,
            Strategy::NextReady { no_cache: false } => RoutingKind::NextReady,
            Strategy::Hash => RoutingKind::Hash,
            Strategy::Landmark(_) => RoutingKind::Landmark,
            Strategy::Embed(_) => RoutingKind::Embed,
        }
    }

    /// The preferred processor for `query`, or `None` when the scheme has
    /// no preference (next-ready: first idle processor wins).
    ///
    /// `loads` are the router queue lengths (the paper's load measure);
    /// `up[p]` masks dead processors; `load_factor` is the Eq. 3/7 knob.
    pub fn preferred(
        &self,
        query: &Query,
        loads: &[usize],
        up: &[bool],
        load_factor: f64,
    ) -> Option<usize> {
        let anchor = query.anchor();
        let processors = loads.len();
        match self {
            Strategy::NextReady { .. } => None,
            Strategy::Hash => {
                // Eq. 1: Target = QueryNodeId MOD NumberOfProcessors; if that
                // processor is down, walk forward in modulo order.
                let home = anchor.index() % processors;
                (0..processors)
                    .map(|k| (home + k) % processors)
                    .find(|&p| up[p])
            }
            Strategy::Landmark(table) => best_by_score(processors, up, |p| {
                let d = table.distance(anchor, p);
                let d = if d == grouting_embed::UNREACHED_U16 {
                    1e6
                } else {
                    d as f64
                };
                d + loads[p] as f64 / load_factor
            }),
            Strategy::Embed(router) => best_by_score(processors, up, |p| {
                router.distance(anchor, p) + loads[p] as f64 / load_factor
            }),
        }
    }

    /// Notifies the strategy that `query` was dispatched to `processor`
    /// (embed routing updates its EMA; others are stateless).
    pub fn on_dispatch(&mut self, query: &Query, processor: usize) {
        if let Strategy::Embed(router) = self {
            router.update(query.anchor(), processor);
        }
    }
}

/// Minimum-score processor among those that are up.
fn best_by_score(processors: usize, up: &[bool], score: impl Fn(usize) -> f64) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (p, &is_up) in up.iter().enumerate().take(processors) {
        if !is_up {
            continue;
        }
        let s = score(p);
        match best {
            Some((_, bs)) if bs <= s => {}
            _ => best = Some((p, s)),
        }
    }
    best.map(|(p, _)| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_graph::NodeId;

    fn q(node: u32) -> Query {
        Query::NeighborAggregation {
            node: NodeId::new(node),
            hops: 2,
            label: None,
        }
    }

    #[test]
    fn kind_display_and_flags() {
        assert_eq!(RoutingKind::Embed.to_string(), "Embed");
        assert!(RoutingKind::Embed.uses_cache());
        assert!(!RoutingKind::NoCache.uses_cache());
        assert!(RoutingKind::Landmark.is_smart());
        assert!(!RoutingKind::Hash.is_smart());
        assert_eq!(RoutingKind::ALL.len(), 5);
    }

    #[test]
    fn next_ready_has_no_preference() {
        let s = Strategy::NextReady { no_cache: false };
        assert_eq!(s.preferred(&q(5), &[0, 0], &[true, true], 20.0), None);
        assert_eq!(s.kind(), RoutingKind::NextReady);
        assert_eq!(
            Strategy::NextReady { no_cache: true }.kind(),
            RoutingKind::NoCache
        );
    }

    #[test]
    fn hash_is_modulo() {
        let s = Strategy::Hash;
        let up = [true, true, true];
        assert_eq!(s.preferred(&q(7), &[0, 0, 0], &up, 20.0), Some(1));
        assert_eq!(s.preferred(&q(9), &[0, 0, 0], &up, 20.0), Some(0));
    }

    #[test]
    fn hash_skips_down_processor() {
        let s = Strategy::Hash;
        let up = [true, false, true];
        // Node 7 hashes to 1 (down) → next in modulo order is 2.
        assert_eq!(s.preferred(&q(7), &[0, 0, 0], &up, 20.0), Some(2));
    }

    #[test]
    fn all_processors_down_yields_none() {
        let s = Strategy::Hash;
        assert_eq!(s.preferred(&q(1), &[0, 0], &[false, false], 20.0), None);
    }
}
