//! The gRouting query router (§3).
//!
//! The router is the piece this paper is about: with storage decoupled from
//! processing, *any* processor can serve *any* query, so the router's job is
//! to pick the processor whose cache most likely already holds the query
//! node's neighbourhood — without ever inspecting those caches — while
//! keeping the load balanced.
//!
//! * [`strategy`] — the four routing schemes: the two baselines (next-ready,
//!   modulo hash of Eq. 1) and the two smart schemes (landmark routing over
//!   the `d(u, p)` table; embed routing over coordinates + per-processor
//!   EMA, Eq. 5–7), plus the no-cache control;
//! * [`ema`] — the exponential-moving-average cache-content estimate;
//! * [`router`] — per-processor queues, acknowledgement-driven dispatch,
//!   query stealing (Requirement 2), the load-balanced distance `d_LB`
//!   (Eq. 3/7), and processor fault masking.

pub mod ema;
pub mod router;
pub mod strategy;

pub use ema::EmbedRouter;
pub use router::{Router, RouterConfig};
pub use strategy::{RoutingKind, Strategy};
