//! The query router: queues, ack-driven dispatch, stealing, fault masking.
//!
//! "The router sends the next query to a processor only when it receives an
//! acknowledgement for the previous query from that processor. The router
//! also keeps a queue for each connection … by monitoring the length of
//! these queues, it can estimate how busy a processor is" (§3.2). Query
//! stealing (Requirement 2) happens here: an idle processor with an empty
//! queue takes the oldest query from the longest other queue.

use std::collections::VecDeque;

use grouting_query::Query;

use crate::strategy::Strategy;

/// Router tuning.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Load factor of Eq. 3/7 (the paper settles on 20).
    pub load_factor: f64,
    /// Whether idle processors steal from busy ones (Requirement 2).
    pub stealing: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            load_factor: 20.0,
            stealing: true,
        }
    }
}

/// The router in front of the processing tier.
#[derive(Debug)]
pub struct Router {
    strategy: Strategy,
    config: RouterConfig,
    /// Per-processor pending queues.
    queues: Vec<VecDeque<(u64, Query)>>,
    /// Queue for strategies without a per-query preference (next-ready).
    global: VecDeque<(u64, Query)>,
    up: Vec<bool>,
    dispatched: u64,
    stolen: u64,
}

impl Router {
    /// Creates a router over `processors` processors.
    ///
    /// # Panics
    ///
    /// Panics if `processors == 0`.
    pub fn new(strategy: Strategy, processors: usize, config: RouterConfig) -> Self {
        assert!(processors > 0, "zero processors");
        Self {
            strategy,
            config,
            queues: (0..processors).map(|_| VecDeque::new()).collect(),
            global: VecDeque::new(),
            up: vec![true; processors],
            dispatched: 0,
            stolen: 0,
        }
    }

    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.queues.len()
    }

    /// The strategy driving this router.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// Current queue lengths (the paper's per-processor load measure).
    pub fn loads(&self) -> Vec<usize> {
        self.queues.iter().map(VecDeque::len).collect()
    }

    /// Queries waiting in all queues.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum::<usize>() + self.global.len()
    }

    /// Whether any query is waiting.
    pub fn has_work(&self) -> bool {
        self.pending() > 0
    }

    /// Queries dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Queries that were stolen rather than served by their preferred
    /// processor.
    pub fn stolen(&self) -> u64 {
        self.stolen
    }

    /// Accepts a query into the appropriate queue.
    pub fn submit(&mut self, seq: u64, query: Query) {
        let loads = self.loads();
        match self
            .strategy
            .preferred(&query, &loads, &self.up, self.config.load_factor)
        {
            Some(p) => self.queues[p].push_back((seq, query)),
            None => self.global.push_back((seq, query)),
        }
    }

    /// Called when `processor` is ready for work (startup or after an ack):
    /// pops its own queue, then the global queue, then — with stealing
    /// enabled — the longest other queue.
    pub fn next_for(&mut self, processor: usize) -> Option<(u64, Query)> {
        if !self.up[processor] {
            return None;
        }
        let picked = if let Some(item) = self.queues[processor].pop_front() {
            Some(item)
        } else if let Some(item) = self.global.pop_front() {
            Some(item)
        } else if self.config.stealing {
            // Steal from the longest queue — from its *back*: the owner
            // drains its queue front-to-back, so the back holds the queries
            // farthest in the future (typically a later hotspot), and
            // stealing there disturbs the owner's cache locality least.
            let victim = (0..self.queues.len())
                .filter(|&p| p != processor && !self.queues[p].is_empty())
                .max_by_key(|&p| self.queues[p].len());
            match victim {
                Some(v) => {
                    let item = self.queues[v].pop_back();
                    if item.is_some() {
                        self.stolen += 1;
                    }
                    item
                }
                None => None,
            }
        } else {
            None
        };
        if let Some((_, ref q)) = picked {
            self.strategy.on_dispatch(q, processor);
            self.dispatched += 1;
        }
        picked
    }

    /// Marks a processor as failed; its queued work is redistributed
    /// through the strategy (which now sees it as down).
    pub fn mark_down(&mut self, processor: usize) {
        if !self.up[processor] {
            return;
        }
        self.up[processor] = false;
        let orphaned: Vec<(u64, Query)> = self.queues[processor].drain(..).collect();
        for (seq, q) in orphaned {
            self.submit(seq, q);
        }
    }

    /// Brings a processor back into rotation.
    pub fn mark_up(&mut self, processor: usize) {
        self.up[processor] = true;
    }

    /// Whether the processor is currently routed to.
    pub fn is_up(&self, processor: usize) -> bool {
        self.up[processor]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_graph::NodeId;
    use grouting_query::Query;

    fn q(node: u32) -> Query {
        Query::NeighborAggregation {
            node: NodeId::new(node),
            hops: 2,
            label: None,
        }
    }

    fn hash_router(processors: usize) -> Router {
        Router::new(Strategy::Hash, processors, RouterConfig::default())
    }

    #[test]
    fn hash_routes_by_modulo_and_dispatches() {
        let mut r = hash_router(3);
        r.submit(0, q(3)); // → processor 0
        r.submit(1, q(4)); // → processor 1
        assert_eq!(r.loads(), vec![1, 1, 0]);
        let (seq, _) = r.next_for(0).unwrap();
        assert_eq!(seq, 0);
        assert_eq!(r.dispatched(), 1);
    }

    #[test]
    fn idle_processor_steals() {
        let mut r = hash_router(2);
        // All queries hash to processor 0.
        for i in 0..4 {
            r.submit(i, q(0));
        }
        assert_eq!(r.loads(), vec![4, 0]);
        let stolen = r.next_for(1).unwrap();
        // Thieves take from the back of the victim's queue (the most
        // recently submitted query) to preserve the owner's locality run.
        assert_eq!(stolen.0, 3, "steals the newest");
        assert_eq!(r.stolen(), 1);
        assert_eq!(r.loads(), vec![3, 0]);
    }

    #[test]
    fn steal_victim_is_the_longest_queue() {
        let mut r = hash_router(3);
        // One query for processor 0, three for processor 1.
        r.submit(0, q(0));
        for i in 1..=3 {
            r.submit(i, q(1));
        }
        assert_eq!(r.loads(), vec![1, 3, 0]);
        // Idle processor 2 must raid the longest queue (processor 1) and
        // take its newest entry.
        assert_eq!(r.next_for(2).unwrap().0, 3);
        assert_eq!(r.loads(), vec![1, 2, 0]);
        assert_eq!(r.stolen(), 1);
    }

    #[test]
    fn own_queue_is_served_before_stealing() {
        let mut r = hash_router(2);
        r.submit(0, q(0)); // → processor 0
        r.submit(1, q(1)); // → processor 1

        // Processor 1's queue is now the longest, but processor 0 has
        // local work, so it must not steal.
        r.submit(2, q(1));
        assert_eq!(r.next_for(0).unwrap().0, 0);
        assert_eq!(r.stolen(), 0);
    }

    #[test]
    fn stealing_drains_a_single_hot_queue_across_processors() {
        // Requirement 2: a hash-skewed workload (every query anchored on
        // one node) still completes with every processor contributing.
        let mut r = hash_router(2);
        for i in 0..8 {
            r.submit(i, q(0)); // all → processor 0
        }
        let mut served = [0u64; 2];
        let mut turn = 0;
        while r.has_work() {
            if r.next_for(turn).is_some() {
                served[turn] += 1;
            }
            turn = (turn + 1) % 2;
        }
        assert_eq!(served[0] + served[1], 8, "no query lost");
        assert!(served[1] > 0, "idle processor never stole");
        assert_eq!(r.stolen(), served[1]);
        assert_eq!(r.dispatched(), 8);
    }

    #[test]
    fn stealing_can_be_disabled() {
        let mut r = Router::new(
            Strategy::Hash,
            2,
            RouterConfig {
                stealing: false,
                ..Default::default()
            },
        );
        r.submit(0, q(0));
        assert!(r.next_for(1).is_none());
        assert!(r.next_for(0).is_some());
    }

    #[test]
    fn next_ready_uses_global_queue() {
        let mut r = Router::new(
            Strategy::NextReady { no_cache: false },
            3,
            RouterConfig::default(),
        );
        r.submit(0, q(9));
        r.submit(1, q(10));
        assert_eq!(r.loads(), vec![0, 0, 0]);
        assert_eq!(r.pending(), 2);
        // Any processor can take the next query, in submission order.
        assert_eq!(r.next_for(2).unwrap().0, 0);
        assert_eq!(r.next_for(0).unwrap().0, 1);
        assert!(!r.has_work());
    }

    #[test]
    fn down_processor_gets_no_work_and_queue_drains() {
        let mut r = hash_router(2);
        for i in 0..4 {
            r.submit(i, q(0)); // all to processor 0
        }
        r.mark_down(0);
        assert!(!r.is_up(0));
        // Work re-routed to processor 1 (hash walks modulo order past 0).
        assert_eq!(r.loads()[1], 4);
        assert!(r.next_for(0).is_none());
        assert!(r.next_for(1).is_some());
        r.mark_up(0);
        assert!(r.is_up(0));
        assert!(r.next_for(0).is_some());
    }

    #[test]
    fn submissions_while_down_avoid_the_dead_processor() {
        let mut r = hash_router(2);
        r.mark_down(0);
        r.submit(0, q(0));
        r.submit(1, q(2));
        assert_eq!(r.loads(), vec![0, 2]);
    }

    #[test]
    fn dispatch_and_steal_counters() {
        let mut r = hash_router(2);
        r.submit(0, q(0));
        r.submit(1, q(0));
        let _ = r.next_for(0);
        let _ = r.next_for(1); // steal
        assert_eq!(r.dispatched(), 2);
        assert_eq!(r.stolen(), 1);
    }

    #[test]
    #[should_panic(expected = "zero processors")]
    fn rejects_zero_processors() {
        let _ = Router::new(Strategy::Hash, 0, RouterConfig::default());
    }

    proptest::proptest! {
        /// Conservation: every submitted query is dispatched exactly once,
        /// regardless of the interleaving of submissions, dispatch
        /// requests, and processor failures (as long as one processor
        /// survives).
        #[test]
        fn prop_no_query_lost_or_duplicated(
            ops in proptest::collection::vec((0u8..4, 0u32..64, 0usize..4), 1..200),
        ) {
            let mut r = Router::new(Strategy::Hash, 4, RouterConfig::default());
            let mut submitted = 0u64;
            let mut seen = std::collections::HashSet::new();
            for (op, node, proc_) in ops {
                match op {
                    0 | 1 => {
                        r.submit(submitted, q(node));
                        submitted += 1;
                    }
                    2 => {
                        if let Some((seq, _)) = r.next_for(proc_) {
                            proptest::prop_assert!(seen.insert(seq), "duplicate {seq}");
                        }
                    }
                    _ => {
                        // Never kill the last processor.
                        if (0..4).filter(|&p| r.is_up(p)).count() > 1 {
                            r.mark_down(proc_);
                        } else {
                            r.mark_up(proc_);
                        }
                    }
                }
            }
            // Drain everything through the surviving processors.
            let mut guard = 0;
            while r.has_work() && guard < 10_000 {
                guard += 1;
                for p in 0..4 {
                    if let Some((seq, _)) = r.next_for(p) {
                        proptest::prop_assert!(seen.insert(seq), "duplicate {seq}");
                    }
                }
                if (0..4).all(|p| !r.is_up(p)) {
                    r.mark_up(0);
                }
            }
            proptest::prop_assert_eq!(seen.len() as u64, submitted);
            proptest::prop_assert_eq!(r.dispatched(), submitted);
        }
    }
}
