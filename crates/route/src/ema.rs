//! Embed routing state: per-processor EMA of served query coordinates.
//!
//! "By keeping an average of the query nodes' co-ordinates that it sent to
//! each processor, the router is able to infer the cache contents in these
//! processors" (§3.4.2). Because LRU favours recent queries, the average is
//! exponential-moving (Eq. 5): `mean(p) ← α · mean(p) + (1 − α) · coords(v)`.

use std::sync::Arc;

use grouting_embed::Embedding;
use grouting_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The embed-routing decision state.
#[derive(Debug, Clone)]
pub struct EmbedRouter {
    embedding: Arc<Embedding>,
    alpha: f64,
    /// Per-processor mean coordinates (Eq. 5 state).
    means: Vec<Vec<f64>>,
}

impl EmbedRouter {
    /// Creates the router state with random initial means (the paper:
    /// "initially, the mean co-ordinates for each processor are assigned
    /// uniformly at random").
    ///
    /// Means are seeded from the coordinates of uniformly random *nodes* so
    /// they start inside the embedded point cloud — a uniform box draw can
    /// land every mean far outside the cloud, collapsing the initial
    /// Voronoi partition onto one processor.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]` or `processors == 0`.
    pub fn new(embedding: Arc<Embedding>, processors: usize, alpha: f64, seed: u64) -> Self {
        assert!(processors > 0, "zero processors");
        assert!((0.0..=1.0).contains(&alpha), "alpha out of [0,1]: {alpha}");
        let dim = embedding.dim();
        let n = embedding.node_count();
        let mut rng = StdRng::seed_from_u64(seed);
        let means = (0..processors)
            .map(|_| {
                if n == 0 {
                    (0..dim).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect()
                } else {
                    let node = grouting_graph::NodeId::new(rng.gen_range(0..n) as u32);
                    embedding
                        .coords(node)
                        .iter()
                        .map(|&c| c as f64 + rng.gen::<f64>() * 0.25)
                        .collect()
                }
            })
            .collect();
        Self {
            embedding,
            alpha,
            means,
        }
    }

    /// Number of processors tracked.
    pub fn processors(&self) -> usize {
        self.means.len()
    }

    /// The smoothing parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The underlying embedding.
    pub fn embedding(&self) -> &Arc<Embedding> {
        &self.embedding
    }

    /// `d₁(u, p)`: L2 distance from the node's coordinates to the
    /// processor's mean (Eq. 6).
    pub fn distance(&self, node: NodeId, processor: usize) -> f64 {
        if node.index() >= self.embedding.node_count() {
            // Unembedded node (e.g. added after preprocessing, not yet
            // refreshed): no locality signal, neutral large distance.
            return f64::MAX / 4.0;
        }
        let c = self.embedding.coords(node);
        self.means[processor]
            .iter()
            .zip(c)
            .map(|(m, x)| (m - *x as f64).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    /// Applies Eq. 5 after dispatching a query on `node` to `processor`.
    pub fn update(&mut self, node: NodeId, processor: usize) {
        if node.index() >= self.embedding.node_count() {
            return;
        }
        let c = self.embedding.coords(node);
        for (m, x) in self.means[processor].iter_mut().zip(c) {
            *m = self.alpha * *m + (1.0 - self.alpha) * *x as f64;
        }
    }

    /// Grows the mean table when processors are added at runtime (the
    /// deployment-flexibility benefit of embed routing: preprocessing is
    /// independent of the processor count).
    pub fn add_processor(&mut self, seed: u64) {
        let dim = self.embedding.dim();
        let n = self.embedding.node_count();
        let mut rng = StdRng::seed_from_u64(seed);
        let mean = if n == 0 {
            (0..dim).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect()
        } else {
            let node = grouting_graph::NodeId::new(rng.gen_range(0..n) as u32);
            self.embedding
                .coords(node)
                .iter()
                .map(|&c| c as f64 + rng.gen::<f64>() * 0.25)
                .collect()
        };
        self.means.push(mean);
    }

    /// Swaps in a refreshed embedding (after offline re-preprocessing).
    pub fn set_embedding(&mut self, embedding: Arc<Embedding>) {
        self.embedding = embedding;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_embed::landmarks::{LandmarkConfig, Landmarks};
    use grouting_embed::EmbeddingConfig;
    use grouting_graph::{CsrGraph, GraphBuilder};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn ring(k: u32) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for i in 0..k {
            b.add_edge(n(i), n((i + 1) % k));
        }
        b.build().unwrap()
    }

    fn embedding(k: u32) -> Arc<Embedding> {
        let g = ring(k);
        let lm = Landmarks::build(
            &g,
            &LandmarkConfig {
                count: 6,
                min_separation: (k as usize / 6).max(2) as u32,
            },
        );
        Arc::new(Embedding::build(
            &lm,
            &EmbeddingConfig {
                dimensions: 4,
                landmark_sweeps: 1,
                landmark_iters: 150,
                node_iters: 50,
                nearest_landmarks: 6,
                seed: 11,
            },
        ))
    }

    #[test]
    fn update_pulls_mean_toward_query() {
        let emb = embedding(32);
        let mut er = EmbedRouter::new(Arc::clone(&emb), 2, 0.5, 1);
        let before = er.distance(n(5), 0);
        for _ in 0..10 {
            er.update(n(5), 0);
        }
        let after = er.distance(n(5), 0);
        assert!(after < before, "before {before} after {after}");
        assert!(after < 1e-2, "mean should converge to the point: {after}");
    }

    #[test]
    fn alpha_one_freezes_mean() {
        let emb = embedding(16);
        let mut er = EmbedRouter::new(emb, 2, 1.0, 2);
        let before = er.distance(n(3), 1);
        er.update(n(3), 1);
        let after = er.distance(n(3), 1);
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    fn alpha_zero_jumps_to_last_query() {
        let emb = embedding(16);
        let mut er = EmbedRouter::new(emb, 2, 0.0, 3);
        er.update(n(3), 0);
        assert!(er.distance(n(3), 0) < 1e-9);
    }

    #[test]
    fn ema_gap_shrinks_by_exactly_alpha_per_update() {
        // Eq. 5: mean ← α·mean + (1−α)·coords(v), so the residual
        // mean − coords(v) scales by α on every update — the distance to
        // the repeated query node must decay geometrically at rate α.
        let emb = embedding(32);
        for alpha in [0.25, 0.5, 0.9] {
            let mut er = EmbedRouter::new(Arc::clone(&emb), 2, alpha, 8);
            er.update(n(5), 0);
            let d0 = er.distance(n(5), 0);
            assert!(d0 > 0.0, "mean should not start on the node");
            er.update(n(5), 0);
            let d1 = er.distance(n(5), 0);
            assert!(
                (d1 - alpha * d0).abs() <= 1e-9 * d0.max(1.0),
                "alpha {alpha}: expected {}, got {d1}",
                alpha * d0
            );
        }
    }

    #[test]
    fn load_balanced_distance_overrides_proximity_under_load() {
        // Eq. 3/7 (Requirement 2): the router scores processors by
        // d₁(u, p) + load(p)/load_factor, so a processor whose EMA mean is
        // nearest still loses the query once its queue grows long enough.
        use crate::strategy::Strategy;
        use grouting_query::Query;

        let emb = embedding(48);
        let mut er = EmbedRouter::new(Arc::clone(&emb), 2, 0.5, 4);
        for i in 0..6u32 {
            er.update(n(i), 0);
            er.update(n(24 + i), 1);
        }
        let s = Strategy::Embed(er);
        let query = Query::NeighborAggregation {
            node: n(7),
            hops: 2,
            label: None,
        };
        let up = [true, true];
        // Idle cluster: embedding proximity decides — processor 0.
        assert_eq!(s.preferred(&query, &[0, 0], &up, 1.0), Some(0));
        // Equal queues keep the proximity choice.
        assert_eq!(s.preferred(&query, &[5, 5], &up, 1.0), Some(0));
        // A deep queue on the near processor flips the decision.
        assert_eq!(s.preferred(&query, &[1000, 0], &up, 1.0), Some(1));
        // A large load factor discounts queue lengths back to proximity.
        assert_eq!(s.preferred(&query, &[1000, 0], &up, 1e9), Some(0));
    }

    #[test]
    fn nearby_nodes_prefer_same_processor_after_warmup() {
        let emb = embedding(48);
        let mut er = EmbedRouter::new(Arc::clone(&emb), 2, 0.5, 4);
        // Send nodes around 0 to processor 0, nodes around 24 to processor 1.
        for i in 0..6u32 {
            er.update(n(i), 0);
            er.update(n(24 + i), 1);
        }
        // A fresh nearby node should now be closer to its region's processor.
        assert!(er.distance(n(7), 0) < er.distance(n(7), 1));
        assert!(er.distance(n(30), 1) < er.distance(n(30), 0));
    }

    #[test]
    fn unembedded_node_is_neutral() {
        let emb = embedding(16);
        let mut er = EmbedRouter::new(emb, 2, 0.5, 5);
        let d = er.distance(n(999), 0);
        assert!(d > 1e100);
        er.update(n(999), 0); // Must not panic or distort means.
        assert!(er.distance(n(0), 0).is_finite());
    }

    #[test]
    fn add_processor_extends_means() {
        let emb = embedding(16);
        let mut er = EmbedRouter::new(emb, 2, 0.5, 6);
        er.add_processor(7);
        assert_eq!(er.processors(), 3);
        assert!(er.distance(n(0), 2).is_finite());
    }

    #[test]
    #[should_panic(expected = "alpha out of")]
    fn rejects_bad_alpha() {
        let emb = embedding(16);
        let _ = EmbedRouter::new(emb, 2, 1.5, 0);
    }
}
