//! Nelder–Mead Simplex-Downhill minimiser.
//!
//! The paper embeds graphs by casting coordinate assignment "as a generic
//! multi-dimensional global minimization problem … approximately solved by
//! many off-the-shelf techniques, e.g., the Simplex Downhill algorithm that
//! we apply in this work" (§3.4.2). This is that algorithm, from scratch:
//! the standard reflection/expansion/contraction/shrink iteration over a
//! `(D+1)`-point simplex.

/// Tuning parameters for one minimisation run.
#[derive(Debug, Clone, Copy)]
pub struct SimplexOptions {
    /// Maximum iterations before giving up.
    pub max_iters: usize,
    /// Convergence threshold on the best-worst objective spread.
    pub tolerance: f64,
    /// Initial simplex edge length around the starting point.
    pub initial_step: f64,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        Self {
            max_iters: 200,
            tolerance: 1e-6,
            initial_step: 1.0,
        }
    }
}

/// Result of a minimisation run.
#[derive(Debug, Clone)]
pub struct SimplexResult {
    /// The best point found.
    pub point: Vec<f64>,
    /// Objective value at that point.
    pub value: f64,
    /// Iterations actually performed.
    pub iterations: usize,
}

const ALPHA: f64 = 1.0; // reflection
const GAMMA: f64 = 2.0; // expansion
const RHO: f64 = 0.5; // contraction
const SIGMA: f64 = 0.5; // shrink

/// Minimises `f` starting from `x0`.
///
/// # Panics
///
/// Panics if `x0` is empty.
pub fn minimize<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    options: &SimplexOptions,
) -> SimplexResult {
    let d = x0.len();
    assert!(d > 0, "cannot minimise over zero dimensions");

    // Build the initial simplex: x0 plus one step along each axis.
    let mut points: Vec<Vec<f64>> = Vec::with_capacity(d + 1);
    points.push(x0.to_vec());
    for i in 0..d {
        let mut p = x0.to_vec();
        p[i] += options.initial_step;
        points.push(p);
    }
    let mut values: Vec<f64> = points.iter().map(|p| f(p)).collect();

    let mut iterations = 0usize;
    while iterations < options.max_iters {
        iterations += 1;

        // Order the simplex best → worst.
        let mut idx: Vec<usize> = (0..=d).collect();
        idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite objective"));
        let best = idx[0];
        let worst = idx[d];
        let second_worst = idx[d - 1];

        if (values[worst] - values[best]).abs() < options.tolerance {
            break;
        }

        // Centroid of all but the worst point.
        let mut centroid = vec![0.0; d];
        for &i in idx.iter().take(d) {
            for (c, x) in centroid.iter_mut().zip(&points[i]) {
                *c += x;
            }
        }
        for c in &mut centroid {
            *c /= d as f64;
        }

        let blend = |t: f64| -> Vec<f64> {
            centroid
                .iter()
                .zip(&points[worst])
                .map(|(c, w)| c + t * (c - w))
                .collect()
        };

        // Reflection.
        let reflected = blend(ALPHA);
        let fr = f(&reflected);
        if fr < values[best] {
            // Expansion.
            let expanded = blend(GAMMA);
            let fe = f(&expanded);
            if fe < fr {
                points[worst] = expanded;
                values[worst] = fe;
            } else {
                points[worst] = reflected;
                values[worst] = fr;
            }
            continue;
        }
        if fr < values[second_worst] {
            points[worst] = reflected;
            values[worst] = fr;
            continue;
        }
        // Contraction (toward the centroid, away from the worst point).
        let contracted = blend(-RHO);
        let fc = f(&contracted);
        if fc < values[worst] {
            points[worst] = contracted;
            values[worst] = fc;
            continue;
        }
        // Shrink everything toward the best point.
        let best_point = points[best].clone();
        for i in 0..=d {
            if i == best {
                continue;
            }
            for (x, b) in points[i].iter_mut().zip(&best_point) {
                *x = b + SIGMA * (*x - b);
            }
            values[i] = f(&points[i]);
        }
    }

    let (bi, bv) = values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite objective"))
        .expect("non-empty simplex");
    SimplexResult {
        point: points[bi].clone(),
        value: *bv,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_quadratic_bowl() {
        let r = minimize(
            |x| x.iter().map(|v| (v - 3.0) * (v - 3.0)).sum(),
            &[0.0, 0.0, 0.0],
            &SimplexOptions::default(),
        );
        for v in &r.point {
            assert!((v - 3.0).abs() < 0.01, "point {:?}", r.point);
        }
        assert!(r.value < 1e-3);
    }

    #[test]
    fn minimises_rosenbrock_2d() {
        let rosenbrock = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let r = minimize(
            rosenbrock,
            &[-1.2, 1.0],
            &SimplexOptions {
                max_iters: 2000,
                tolerance: 1e-12,
                initial_step: 0.5,
            },
        );
        assert!(r.value < 1e-4, "value {}", r.value);
        assert!((r.point[0] - 1.0).abs() < 0.05);
        assert!((r.point[1] - 1.0).abs() < 0.05);
    }

    #[test]
    fn respects_iteration_budget() {
        let mut calls = 0usize;
        let r = minimize(
            |x| {
                calls += 1;
                x[0] * x[0]
            },
            &[100.0],
            &SimplexOptions {
                max_iters: 5,
                tolerance: 0.0,
                initial_step: 1.0,
            },
        );
        assert!(r.iterations <= 5);
        assert!(calls < 40);
    }

    #[test]
    fn already_optimal_converges_fast() {
        let r = minimize(
            |x| x.iter().map(|v| v * v).sum(),
            &[0.0, 0.0],
            &SimplexOptions {
                initial_step: 1e-9,
                ..Default::default()
            },
        );
        assert!(r.iterations < 10, "iterations {}", r.iterations);
    }

    #[test]
    fn one_dimensional_works() {
        let r = minimize(
            |x| (x[0] + 7.0).abs(),
            &[0.0],
            &SimplexOptions {
                max_iters: 500,
                ..Default::default()
            },
        );
        assert!((r.point[0] + 7.0).abs() < 0.01, "point {:?}", r.point);
    }

    #[test]
    #[should_panic(expected = "zero dimensions")]
    fn rejects_empty_start() {
        let _ = minimize(|_| 0.0, &[], &SimplexOptions::default());
    }
}
