//! Pivot landmark assignment and the node→processor distance table.
//!
//! Landmark routing (§3.4.1) maps landmarks onto the `P` query processors:
//!
//! * the first two *pivot* landmarks are the pair farthest apart;
//! * each next pivot is the landmark farthest from all chosen pivots;
//! * every remaining landmark joins the processor of its closest pivot;
//! * `d(u, p)` = the minimum distance from `u` to any landmark of
//!   processor `p`, stored for all `(u, p)` — O(nP) space, O(nL) time.

use grouting_graph::NodeId;

use crate::landmarks::Landmarks;
use crate::UNREACHED_U16;

/// The `n × P` distance table consulted by the landmark router.
#[derive(Debug, Clone)]
pub struct ProcessorDistanceTable {
    processors: usize,
    nodes: usize,
    /// Row-major `dist[u * P + p]`.
    dist: Vec<u16>,
    /// Which processor each landmark was assigned to.
    landmark_owner: Vec<usize>,
    /// The pivot landmark index of each processor.
    pivots: Vec<usize>,
}

impl ProcessorDistanceTable {
    /// Builds the table from landmark distance maps for `processors`
    /// processors.
    ///
    /// # Panics
    ///
    /// Panics if `processors == 0` or no landmarks are available.
    pub fn build(landmarks: &Landmarks, processors: usize) -> Self {
        assert!(processors > 0, "zero processors");
        assert!(!landmarks.is_empty(), "no landmarks to assign");
        let l = landmarks.len();
        let pivots = select_pivots(landmarks, processors.min(l));
        let landmark_owner = assign_landmarks(landmarks, &pivots);

        let nodes = landmarks.dist[0].len();
        let mut dist = vec![UNREACHED_U16; nodes * processors];
        for (i, row) in landmarks.dist.iter().enumerate() {
            let owner = landmark_owner[i];
            for (v, &d) in row.iter().enumerate() {
                let cell = &mut dist[v * processors + owner];
                if d < *cell {
                    *cell = d;
                }
            }
        }
        Self {
            processors,
            nodes,
            dist,
            landmark_owner,
            pivots,
        }
    }

    /// Number of processors the table was built for.
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// Number of nodes covered.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// `d(u, p)` in hops ([`UNREACHED_U16`] if no landmark of `p` reaches).
    #[inline]
    pub fn distance(&self, node: NodeId, processor: usize) -> u16 {
        match self.dist.get(node.index() * self.processors + processor) {
            Some(&d) => d,
            None => UNREACHED_U16,
        }
    }

    /// All processor distances of `node` as a slice.
    pub fn row(&self, node: NodeId) -> &[u16] {
        let start = node.index() * self.processors;
        &self.dist[start..start + self.processors]
    }

    /// The processor with minimum `d(u, p)` (ties to the lower id).
    pub fn best_processor(&self, node: NodeId) -> usize {
        let row = self.row(node);
        row.iter()
            .enumerate()
            .min_by_key(|&(_, &d)| d)
            .map(|(p, _)| p)
            .unwrap_or(0)
    }

    /// Which processor owns landmark `i`.
    pub fn landmark_owner(&self, i: usize) -> usize {
        self.landmark_owner[i]
    }

    /// Pivot landmark indices per processor (in processor order).
    pub fn pivots(&self) -> &[usize] {
        &self.pivots
    }

    /// Overwrites the row of `node` (used by incremental updates).
    pub(crate) fn set_row(&mut self, node: NodeId, row: &[u16]) {
        assert_eq!(row.len(), self.processors, "row arity");
        let start = node.index() * self.processors;
        if start + self.processors <= self.dist.len() {
            self.dist[start..start + self.processors].copy_from_slice(row);
        } else if node.index() == self.nodes {
            // Appending exactly one new node extends the table.
            self.dist.extend_from_slice(row);
            self.nodes += 1;
        } else {
            panic!("row for node {node} beyond table end");
        }
    }

    /// Recomputes a row from a fresh landmark-distance vector.
    pub fn row_from_landmark_vector(&self, vector: &[u16]) -> Vec<u16> {
        let mut row = vec![UNREACHED_U16; self.processors];
        for (i, &d) in vector.iter().enumerate() {
            let p = self.landmark_owner[i];
            if d < row[p] {
                row[p] = d;
            }
        }
        row
    }

    /// Bytes held by the table — the router-side storage cost (Table 3).
    pub fn storage_bytes(&self) -> usize {
        self.dist.len() * 2 + self.landmark_owner.len() * 8 + self.pivots.len() * 8
    }
}

/// Farthest-point pivot selection over the landmark metric.
fn select_pivots(landmarks: &Landmarks, count: usize) -> Vec<usize> {
    let l = landmarks.len();
    let d = |i: usize, j: usize| -> u32 {
        let v = landmarks.landmark_distance(i, j);
        if v == UNREACHED_U16 {
            // Unreachable pairs are "infinitely far": ideal pivot separation.
            u32::MAX
        } else {
            v as u32
        }
    };

    // First two: the farthest pair.
    let mut best = (0usize, if l > 1 { 1 } else { 0 }, 0u32);
    for i in 0..l {
        for j in (i + 1)..l {
            let dij = d(i, j);
            if dij >= best.2 {
                best = (i, j, dij);
            }
        }
    }
    let mut pivots = vec![best.0];
    if count > 1 && l > 1 {
        pivots.push(best.1);
    }
    // Each next: maximise the minimum distance to chosen pivots.
    while pivots.len() < count {
        let next = (0..l)
            .filter(|i| !pivots.contains(i))
            .max_by_key(|&i| pivots.iter().map(|&p| d(i, p)).min().unwrap_or(0));
        match next {
            Some(i) => pivots.push(i),
            None => break,
        }
    }
    pivots
}

/// Assigns every landmark to the processor of its closest pivot.
fn assign_landmarks(landmarks: &Landmarks, pivots: &[usize]) -> Vec<usize> {
    let l = landmarks.len();
    (0..l)
        .map(|i| {
            pivots
                .iter()
                .enumerate()
                .min_by_key(|&(_, &p)| {
                    let d = landmarks.landmark_distance(i, p);
                    if d == UNREACHED_U16 {
                        u32::MAX
                    } else {
                        d as u32
                    }
                })
                .map(|(proc_, _)| proc_)
                .expect("at least one pivot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landmarks::LandmarkConfig;
    use grouting_graph::{CsrGraph, GraphBuilder};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn ring(k: u32) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for i in 0..k {
            b.add_edge(n(i), n((i + 1) % k));
        }
        b.build().unwrap()
    }

    fn ring_table(k: u32, landmarks: usize, procs: usize) -> (ProcessorDistanceTable, Landmarks) {
        let g = ring(k);
        let lm = Landmarks::build(
            &g,
            &LandmarkConfig {
                count: landmarks,
                min_separation: 2,
            },
        );
        (ProcessorDistanceTable::build(&lm, procs), lm)
    }

    #[test]
    fn table_dimensions() {
        let (t, lm) = ring_table(32, 8, 4);
        assert_eq!(t.processors(), 4);
        assert_eq!(t.nodes(), 32);
        assert_eq!(lm.len(), 8);
        assert_eq!(t.row(n(0)).len(), 4);
    }

    #[test]
    fn every_landmark_owned_and_every_processor_used() {
        let (t, lm) = ring_table(64, 12, 4);
        let mut used = vec![false; 4];
        for i in 0..lm.len() {
            used[t.landmark_owner(i)] = true;
        }
        assert!(used.iter().all(|&u| u), "owners {used:?}");
    }

    #[test]
    fn distance_is_min_over_owned_landmarks() {
        let (t, lm) = ring_table(32, 6, 3);
        for v in 0..32u32 {
            for p in 0..3 {
                let expect = (0..lm.len())
                    .filter(|&i| t.landmark_owner(i) == p)
                    .map(|i| lm.distance(i, n(v)))
                    .min()
                    .unwrap_or(UNREACHED_U16);
                assert_eq!(t.distance(n(v), p), expect);
            }
        }
    }

    #[test]
    fn nearby_nodes_share_best_processor() {
        // The locality property the router depends on: adjacent ring nodes
        // mostly route to the same processor.
        let (t, _) = ring_table(64, 8, 4);
        let mut same = 0usize;
        for v in 0..64u32 {
            if t.best_processor(n(v)) == t.best_processor(n((v + 1) % 64)) {
                same += 1;
            }
        }
        assert!(same >= 48, "only {same}/64 adjacent pairs agree");
    }

    #[test]
    fn pivots_are_far_apart() {
        let (t, lm) = ring_table(64, 8, 2);
        let pv = t.pivots();
        assert_eq!(pv.len(), 2);
        // The first two pivots must be the farthest landmark pair.
        let d = lm.landmark_distance(pv[0], pv[1]);
        let max = (0..lm.len())
            .flat_map(|i| ((i + 1)..lm.len()).map(move |j| (i, j)))
            .map(|(i, j)| lm.landmark_distance(i, j))
            .max()
            .unwrap();
        assert_eq!(d, max, "pivot distance {d} vs max {max}");
    }

    #[test]
    fn row_from_landmark_vector_matches_build() {
        let (t, lm) = ring_table(32, 6, 3);
        for v in 0..32u32 {
            let vec_ = lm.node_vector(n(v));
            assert_eq!(t.row_from_landmark_vector(&vec_), t.row(n(v)));
        }
    }

    #[test]
    fn set_row_appends_one_new_node() {
        let (mut t, _) = ring_table(16, 4, 2);
        let fresh = vec![3u16, 7u16];
        t.set_row(n(16), &fresh);
        assert_eq!(t.nodes(), 17);
        assert_eq!(t.distance(n(16), 0), 3);
        assert_eq!(t.distance(n(16), 1), 7);
    }

    #[test]
    fn more_processors_than_landmarks_degrades_gracefully() {
        let (t, lm) = ring_table(16, 2, 5);
        assert_eq!(t.processors(), 5);
        // Only 2 pivots exist; nodes must still map to valid processors.
        for v in 0..16u32 {
            assert!(t.best_processor(n(v)) < 5);
        }
        assert!(lm.len() >= 2);
    }

    #[test]
    #[should_panic(expected = "zero processors")]
    fn rejects_zero_processors() {
        let g = ring(8);
        let lm = Landmarks::build(
            &g,
            &LandmarkConfig {
                count: 2,
                min_separation: 2,
            },
        );
        let _ = ProcessorDistanceTable::build(&lm, 0);
    }
}
