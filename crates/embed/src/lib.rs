//! Landmark and embedding machinery behind the smart routing schemes (§3.4).
//!
//! Both smart routers share a preprocessing pipeline:
//!
//! 1. [`landmarks`] selects a small set `L` of high-degree, well-separated
//!    landmark nodes and runs one bi-directed BFS per landmark, producing
//!    the `|L| × n` hop-distance matrix;
//! 2. **Landmark routing** ([`pivots`]) assigns landmarks to processors via
//!    farthest-point pivots and materialises the `n × P` node→processor
//!    distance table the router consults in O(P);
//! 3. **Embed routing** ([`embedding`]) instead embeds the graph into a
//!    D-dimensional Euclidean space with the Simplex-Downhill minimiser
//!    ([`simplex`]), preserving hop distances by relative error (Eq. 4);
//!    the router then tracks an EMA of each processor's served coordinates.
//!
//! [`updates`] implements the paper's incremental maintenance rules for
//! node/edge additions and deletions, and [`error`] the relative-error
//! evaluation used for Figure 12(a).

pub mod embedding;
pub mod error;
pub mod landmarks;
pub mod pivots;
pub mod simplex;
pub mod spt;
pub mod updates;

pub use embedding::{Embedding, EmbeddingConfig};
pub use landmarks::{LandmarkConfig, Landmarks};
pub use pivots::ProcessorDistanceTable;
pub use spt::{DynamicLandmarks, LandmarkTree};

/// Hop distance marking "unreachable" in the `u16`-compressed matrices.
pub const UNREACHED_U16: u16 = u16::MAX;
