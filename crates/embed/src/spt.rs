//! Dynamic shortest-path trees for landmark distance maintenance.
//!
//! §3.4.1 on graph updates: "one needs to recompute the distances from
//! every node to each of the landmarks. This can be performed efficiently
//! by keeping an additional shortest-path-tree data structure [31]." The
//! paper itself takes the simpler per-node-BFS route
//! ([`crate::updates::landmark_distances_from`]); this module implements
//! the efficient alternative: one incrementally-maintained BFS tree per
//! landmark over the bi-directed dynamic graph.
//!
//! * **Edge insertion** — relax the cheaper endpoint and BFS-propagate
//!   improvements: `O(affected)`.
//! * **Edge deletion** — if a tree edge died, invalidate its subtree,
//!   seed a repair frontier from the subtree's boundary (neighbours with
//!   intact distances), and re-settle in distance order.
//! * **Node removal** — the node plus its subtree are invalidated and
//!   repaired the same way.
//!
//! Every operation leaves the tree equal to a from-scratch BFS, which the
//! property tests assert after arbitrary update interleavings.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap, HashSet, VecDeque};

use grouting_graph::dynamic::{DynamicGraph, GraphUpdate};
use grouting_graph::NodeId;

use crate::UNREACHED_U16;

/// An incrementally maintained BFS tree rooted at one landmark.
#[derive(Debug, Clone)]
pub struct LandmarkTree {
    root: NodeId,
    dist: HashMap<NodeId, u32>,
    parent: HashMap<NodeId, NodeId>,
    children: HashMap<NodeId, BTreeSet<NodeId>>,
}

fn bi_neighbors(g: &DynamicGraph, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
    g.out_neighbors(v).chain(g.in_neighbors(v))
}

impl LandmarkTree {
    /// Builds the tree with a fresh bi-directed BFS from `root`.
    pub fn build(g: &DynamicGraph, root: NodeId) -> Self {
        let mut tree = Self {
            root,
            dist: HashMap::new(),
            parent: HashMap::new(),
            children: HashMap::new(),
        };
        if !g.contains(root) {
            return tree;
        }
        tree.dist.insert(root, 0);
        let mut queue = VecDeque::from([root]);
        while let Some(v) = queue.pop_front() {
            let dv = tree.dist[&v];
            for w in bi_neighbors(g, v) {
                if let std::collections::hash_map::Entry::Vacant(e) = tree.dist.entry(w) {
                    e.insert(dv + 1);
                    tree.set_parent(w, v);
                    queue.push_back(w);
                }
            }
        }
        tree
    }

    /// The landmark this tree is rooted at.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Hop distance from the root to `v`, `None` when unreachable.
    pub fn distance(&self, v: NodeId) -> Option<u32> {
        self.dist.get(&v).copied()
    }

    /// Distance compressed to the `u16` convention used by the routing
    /// tables.
    pub fn distance_u16(&self, v: NodeId) -> u16 {
        match self.distance(v) {
            Some(d) => d.min((UNREACHED_U16 - 1) as u32) as u16,
            None => UNREACHED_U16,
        }
    }

    /// Number of reachable nodes (including the root).
    pub fn reachable(&self) -> usize {
        self.dist.len()
    }

    fn set_parent(&mut self, child: NodeId, parent: NodeId) {
        if let Some(old) = self.parent.insert(child, parent) {
            if let Some(set) = self.children.get_mut(&old) {
                set.remove(&child);
            }
        }
        self.children.entry(parent).or_default().insert(child);
    }

    fn clear_parent(&mut self, child: NodeId) {
        if let Some(old) = self.parent.remove(&child) {
            if let Some(set) = self.children.get_mut(&old) {
                set.remove(&child);
            }
        }
    }

    /// BFS-propagates strict improvements from already-updated seeds.
    fn relax_from(&mut self, g: &DynamicGraph, seeds: Vec<NodeId>) {
        let mut heap: BinaryHeap<Reverse<(u32, NodeId)>> = seeds
            .into_iter()
            .filter_map(|v| self.dist.get(&v).map(|&d| Reverse((d, v))))
            .collect();
        while let Some(Reverse((dv, v))) = heap.pop() {
            if self.dist.get(&v) != Some(&dv) {
                continue; // Stale entry.
            }
            for w in bi_neighbors(g, v).collect::<Vec<_>>() {
                let candidate = dv + 1;
                let improves = match self.dist.get(&w) {
                    Some(&dw) => candidate < dw,
                    None => true,
                };
                if improves {
                    self.dist.insert(w, candidate);
                    self.set_parent(w, v);
                    heap.push(Reverse((candidate, w)));
                }
            }
        }
    }

    /// Collects the tree subtree rooted at each seed (the invalidated set).
    fn subtree_of(&self, seeds: &[NodeId]) -> HashSet<NodeId> {
        let mut affected = HashSet::new();
        let mut stack: Vec<NodeId> = seeds.to_vec();
        while let Some(v) = stack.pop() {
            if affected.insert(v) {
                if let Some(kids) = self.children.get(&v) {
                    stack.extend(kids.iter().copied());
                }
            }
        }
        affected
    }

    /// Invalidates `affected` and repairs it from its boundary: every
    /// affected node adjacent to an intact node becomes a settlement
    /// candidate at `intact_dist + 1`, settled in distance order.
    fn repair(&mut self, g: &DynamicGraph, affected: HashSet<NodeId>) {
        for &a in &affected {
            self.dist.remove(&a);
            self.clear_parent(a);
            // Its children set is rebuilt as members re-attach; entries for
            // affected children are already being cleared via clear_parent.
            self.children.remove(&a);
        }
        let mut heap: BinaryHeap<Reverse<(u32, NodeId, NodeId)>> = BinaryHeap::new();
        for &a in &affected {
            if !g.contains(a) {
                continue;
            }
            for w in bi_neighbors(g, a).collect::<Vec<_>>() {
                if let Some(&dw) = self.dist.get(&w) {
                    heap.push(Reverse((dw + 1, a, w)));
                }
            }
        }
        while let Some(Reverse((d, v, via))) = heap.pop() {
            if self.dist.contains_key(&v) {
                continue;
            }
            self.dist.insert(v, d);
            self.set_parent(v, via);
            for w in bi_neighbors(g, v).collect::<Vec<_>>() {
                if affected.contains(&w) && !self.dist.contains_key(&w) {
                    heap.push(Reverse((d + 1, w, v)));
                }
            }
        }
    }

    /// Applies one topology update (the graph must already reflect it).
    pub fn apply(&mut self, g: &DynamicGraph, update: GraphUpdate) {
        match update {
            GraphUpdate::AddNode(_) => {}
            GraphUpdate::AddEdge(u, v) => {
                // The edge is bi-directed for distance purposes: relax both
                // ways from whichever endpoint is (now) cheaper.
                self.relax_from(g, vec![u, v]);
            }
            GraphUpdate::RemoveEdge(u, v) => {
                if self.root == u || self.root == v {
                    // Root-incident edges can invalidate arbitrary children.
                    let seeds: Vec<NodeId> = [u, v]
                        .into_iter()
                        .filter(|&x| x != self.root && self.parent.get(&x) == Some(&self.root))
                        .collect();
                    if !seeds.is_empty() {
                        let affected = self.subtree_of(&seeds);
                        self.repair(g, affected);
                    }
                    return;
                }
                let mut seeds = Vec::new();
                if self.parent.get(&v) == Some(&u) {
                    seeds.push(v);
                }
                if self.parent.get(&u) == Some(&v) {
                    seeds.push(u);
                }
                if !seeds.is_empty() {
                    let affected = self.subtree_of(&seeds);
                    self.repair(g, affected);
                }
            }
            GraphUpdate::RemoveNode(u) => {
                if u == self.root {
                    // The landmark itself vanished: the tree is void.
                    self.dist.clear();
                    self.parent.clear();
                    self.children.clear();
                    return;
                }
                if !self.dist.contains_key(&u) {
                    return;
                }
                let mut affected = self.subtree_of(&[u]);
                affected.insert(u);
                self.repair(g, affected);
                // `u` is gone from the graph, so repair found no distance
                // for it; drop any residue.
                self.dist.remove(&u);
                self.clear_parent(u);
            }
        }
    }

    /// Test/diagnostic helper: does the tree match a from-scratch BFS?
    pub fn verify(&self, g: &DynamicGraph) -> bool {
        let fresh = LandmarkTree::build(g, self.root);
        fresh.dist == self.dist
    }
}

/// A full landmark set maintained as dynamic trees.
#[derive(Debug, Clone)]
pub struct DynamicLandmarks {
    trees: Vec<LandmarkTree>,
}

impl DynamicLandmarks {
    /// Builds one tree per landmark.
    pub fn build(g: &DynamicGraph, landmarks: &[NodeId]) -> Self {
        Self {
            trees: landmarks
                .iter()
                .map(|&l| LandmarkTree::build(g, l))
                .collect(),
        }
    }

    /// Number of landmarks.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Applies one update to every tree.
    pub fn apply(&mut self, g: &DynamicGraph, update: GraphUpdate) {
        for tree in &mut self.trees {
            tree.apply(g, update);
        }
    }

    /// The node's distance vector to all landmarks — same shape as
    /// [`crate::landmarks::Landmarks::node_vector`], but always current.
    pub fn node_vector(&self, v: NodeId) -> Vec<u16> {
        self.trees.iter().map(|t| t.distance_u16(v)).collect()
    }

    /// Access to an individual tree.
    pub fn tree(&self, i: usize) -> &LandmarkTree {
        &self.trees[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn ring(k: u32) -> DynamicGraph {
        let mut g = DynamicGraph::new();
        for i in 0..k {
            g.add_edge(n(i), n((i + 1) % k));
        }
        g.take_log();
        g
    }

    #[test]
    fn build_matches_bfs() {
        let g = ring(16);
        let t = LandmarkTree::build(&g, n(0));
        assert_eq!(t.distance(n(0)), Some(0));
        assert_eq!(t.distance(n(8)), Some(8));
        assert_eq!(t.distance(n(12)), Some(4));
        assert_eq!(t.reachable(), 16);
        assert!(t.verify(&g));
    }

    #[test]
    fn edge_insertion_creates_shortcut() {
        let mut g = ring(16);
        let mut t = LandmarkTree::build(&g, n(0));
        assert_eq!(t.distance(n(8)), Some(8));
        g.add_edge(n(0), n(8));
        t.apply(&g, GraphUpdate::AddEdge(n(0), n(8)));
        assert_eq!(t.distance(n(8)), Some(1));
        assert_eq!(t.distance(n(7)), Some(2), "neighbour rides the shortcut");
        assert!(t.verify(&g));
    }

    #[test]
    fn edge_removal_repairs_subtree() {
        let mut g = ring(16);
        let mut t = LandmarkTree::build(&g, n(0));
        // Cut 4-5: nodes 5..8 must re-route the long way round.
        g.remove_edge(n(4), n(5)).unwrap();
        t.apply(&g, GraphUpdate::RemoveEdge(n(4), n(5)));
        assert_eq!(t.distance(n(5)), Some(11));
        assert_eq!(t.distance(n(4)), Some(4));
        assert!(t.verify(&g));
    }

    #[test]
    fn disconnecting_removal_unreaches() {
        let mut g = DynamicGraph::new();
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        let mut t = LandmarkTree::build(&g, n(0));
        g.remove_edge(n(1), n(2)).unwrap();
        t.apply(&g, GraphUpdate::RemoveEdge(n(1), n(2)));
        assert_eq!(t.distance(n(2)), None);
        assert_eq!(t.distance_u16(n(2)), UNREACHED_U16);
        assert!(t.verify(&g));
    }

    #[test]
    fn node_removal_repairs() {
        let mut g = ring(12);
        // Chord so removing node 3 leaves an alternative.
        g.add_edge(n(2), n(4));
        let mut t = LandmarkTree::build(&g, n(0));
        g.remove_node(n(3)).unwrap();
        t.apply(&g, GraphUpdate::RemoveNode(n(3)));
        assert_eq!(t.distance(n(3)), None);
        assert_eq!(t.distance(n(4)), Some(3));
        assert!(t.verify(&g));
    }

    #[test]
    fn root_removal_voids_tree() {
        let mut g = ring(8);
        let mut t = LandmarkTree::build(&g, n(0));
        g.remove_node(n(0)).unwrap();
        t.apply(&g, GraphUpdate::RemoveNode(n(0)));
        assert_eq!(t.reachable(), 0);
        assert_eq!(t.distance(n(1)), None);
    }

    #[test]
    fn new_node_attaches_via_edge() {
        let mut g = ring(8);
        let mut t = LandmarkTree::build(&g, n(0));
        g.add_node(n(100)).unwrap();
        t.apply(&g, GraphUpdate::AddNode(n(100)));
        assert_eq!(t.distance(n(100)), None);
        g.add_edge(n(100), n(4));
        t.apply(&g, GraphUpdate::AddEdge(n(100), n(4)));
        assert_eq!(t.distance(n(100)), Some(5));
        assert!(t.verify(&g));
    }

    #[test]
    fn dynamic_landmark_set_tracks_all_trees() {
        let mut g = ring(16);
        let mut dl = DynamicLandmarks::build(&g, &[n(0), n(8)]);
        assert_eq!(dl.len(), 2);
        assert_eq!(dl.node_vector(n(4)), vec![4, 4]);
        g.add_edge(n(0), n(4));
        dl.apply(&g, GraphUpdate::AddEdge(n(0), n(4)));
        assert_eq!(dl.node_vector(n(4)), vec![1, 4]);
        assert!(dl.tree(0).verify(&g));
        assert!(dl.tree(1).verify(&g));
    }

    proptest::proptest! {
        /// After any interleaving of updates, every tree equals a fresh BFS.
        #[test]
        fn prop_tree_equals_fresh_bfs(
            base in proptest::collection::vec((0u32..14, 0u32..14), 4..40),
            ops in proptest::collection::vec((0u8..3, 0u32..14, 0u32..14), 1..40),
            root in 0u32..14,
        ) {
            let mut g = DynamicGraph::new();
            for (s, d) in &base {
                g.add_edge(n(*s), n(*d));
            }
            // The root must exist for the tree to be meaningful.
            g.add_edge(n(root), n((root + 1) % 14));
            g.take_log();
            let mut t = LandmarkTree::build(&g, n(root));
            for (op, a, b) in ops {
                let update = match op {
                    0 => {
                        if !g.add_edge(n(a), n(b)) {
                            continue;
                        }
                        GraphUpdate::AddEdge(n(a), n(b))
                    }
                    1 => {
                        match g.remove_edge(n(a), n(b)) {
                            Ok(true) => GraphUpdate::RemoveEdge(n(a), n(b)),
                            _ => continue,
                        }
                    }
                    _ => {
                        if n(a) == n(root) || g.remove_node(n(a)).is_err() {
                            continue;
                        }
                        GraphUpdate::RemoveNode(n(a))
                    }
                };
                t.apply(&g, update);
                proptest::prop_assert!(
                    t.verify(&g),
                    "tree diverged after {:?}",
                    update
                );
            }
        }
    }
}
