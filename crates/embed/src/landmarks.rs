//! Landmark selection and distance-map computation (§3.4.1 preprocessing).
//!
//! "We select landmarks based on their node degree and how well they spread
//! over the entire graph. Our first step is to find a certain number of
//! landmarks considering the highest degree nodes … if we find two landmarks
//! to be closer than a pre-defined threshold, the one with the lower degree
//! is discarded."
//!
//! Selection walks nodes in descending bi-directed degree; accepting a
//! landmark marks its `(min_separation − 1)`-hop ball as blocked, so any
//! later (lower-degree) candidate inside the ball is skipped — equivalent to
//! the paper's discard rule. One bi-directed BFS per accepted landmark then
//! fills the `|L| × n` distance matrix (parallelised across landmarks).

use grouting_graph::traversal::{bfs_distances, bfs_within, Direction};
use grouting_graph::{CsrGraph, NodeId};

use crate::UNREACHED_U16;

/// Parameters for landmark selection.
#[derive(Debug, Clone, Copy)]
pub struct LandmarkConfig {
    /// Number of landmarks to select (the paper settles on 96).
    pub count: usize,
    /// Minimum pairwise hop separation (the paper settles on 3).
    pub min_separation: u32,
}

impl Default for LandmarkConfig {
    fn default() -> Self {
        Self {
            count: 96,
            min_separation: 3,
        }
    }
}

/// The selected landmarks and their full distance maps.
#[derive(Debug, Clone)]
pub struct Landmarks {
    /// Landmark node ids, in selection (descending degree) order.
    pub nodes: Vec<NodeId>,
    /// `dist[i][v]`: hops from landmark `i` to node `v` in the bi-directed
    /// view; [`UNREACHED_U16`] if unreachable.
    pub dist: Vec<Vec<u16>>,
    /// The separation threshold used at selection time.
    pub min_separation: u32,
}

impl Landmarks {
    /// Selects landmarks and computes their distance maps.
    ///
    /// # Panics
    ///
    /// Panics if `config.count == 0`.
    pub fn build(g: &CsrGraph, config: &LandmarkConfig) -> Self {
        let nodes = select(g, config);
        let dist = distance_maps(g, &nodes);
        Self {
            nodes,
            dist,
            min_separation: config.min_separation,
        }
    }

    /// Computes distance maps for an explicit landmark set over `g`
    /// (used when preprocessing must be replayed on a different version of
    /// the graph, e.g. the Figure 10 staleness experiment).
    pub fn for_nodes(g: &CsrGraph, nodes: Vec<NodeId>, min_separation: u32) -> Self {
        let dist = distance_maps(g, &nodes);
        Self {
            nodes,
            dist,
            min_separation,
        }
    }

    /// Number of landmarks actually selected (may fall short of the request
    /// on small or fragmented graphs).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no landmark could be selected (empty graph).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Distance from landmark `i` to `node` in hops.
    #[inline]
    pub fn distance(&self, i: usize, node: NodeId) -> u16 {
        self.dist[i][node.index()]
    }

    /// Distance between two landmarks.
    pub fn landmark_distance(&self, i: usize, j: usize) -> u16 {
        self.dist[i][self.nodes[j].index()]
    }

    /// Distances from `node` to every landmark.
    pub fn node_vector(&self, node: NodeId) -> Vec<u16> {
        self.dist.iter().map(|row| row[node.index()]).collect()
    }

    /// Bytes consumed by the distance matrix (Table 2/3 accounting).
    pub fn storage_bytes(&self) -> usize {
        self.dist.iter().map(|row| row.len() * 2).sum::<usize>() + self.nodes.len() * 4
    }

    /// Upper bound on `d(u, v)` through the best landmark (Eq. 2).
    pub fn distance_upper_bound(&self, u: NodeId, v: NodeId) -> Option<u32> {
        (0..self.len())
            .filter_map(|i| {
                let du = self.distance(i, u);
                let dv = self.distance(i, v);
                if du == UNREACHED_U16 || dv == UNREACHED_U16 {
                    None
                } else {
                    Some(du as u32 + dv as u32)
                }
            })
            .min()
    }

    /// Lower bound on `d(u, v)` through the best landmark (Eq. 2).
    pub fn distance_lower_bound(&self, u: NodeId, v: NodeId) -> Option<u32> {
        (0..self.len())
            .filter_map(|i| {
                let du = self.distance(i, u);
                let dv = self.distance(i, v);
                if du == UNREACHED_U16 || dv == UNREACHED_U16 {
                    None
                } else {
                    Some((du as i64 - dv as i64).unsigned_abs() as u32)
                }
            })
            .max()
    }
}

/// Runs the degree-and-separation selection rule.
fn select(g: &CsrGraph, config: &LandmarkConfig) -> Vec<NodeId> {
    assert!(config.count > 0, "zero landmarks requested");
    let order = g.nodes_by_degree_desc();
    let mut blocked = vec![false; g.node_count()];
    let mut chosen = Vec::with_capacity(config.count);
    for v in order {
        if chosen.len() >= config.count {
            break;
        }
        if blocked[v.index()] || g.degree(v) == 0 {
            continue;
        }
        chosen.push(v);
        if config.min_separation > 0 {
            for (w, _) in bfs_within(g, v, config.min_separation - 1, Direction::Both) {
                blocked[w.index()] = true;
            }
        }
    }
    chosen
}

/// One full bi-directed BFS per landmark, parallelised across landmarks.
fn distance_maps(g: &CsrGraph, landmarks: &[NodeId]) -> Vec<Vec<u16>> {
    let compress = |d: Vec<u32>| -> Vec<u16> {
        d.into_iter()
            .map(|x| {
                if x == grouting_graph::traversal::UNREACHED {
                    UNREACHED_U16
                } else {
                    x.min((UNREACHED_U16 - 1) as u32) as u16
                }
            })
            .collect()
    };

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(landmarks.len().max(1));
    if threads <= 1 || landmarks.len() <= 1 {
        return landmarks
            .iter()
            .map(|&l| compress(bfs_distances(g, l, Direction::Both)))
            .collect();
    }

    let mut rows: Vec<Option<Vec<u16>>> = vec![None; landmarks.len()];
    let next = std::sync::atomic::AtomicUsize::new(0);
    let rows_cell: Vec<std::sync::Mutex<&mut Option<Vec<u16>>>> =
        rows.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= landmarks.len() {
                    break;
                }
                let row = compress(bfs_distances(g, landmarks[i], Direction::Both));
                **rows_cell[i].lock().expect("row lock") = Some(row);
            });
        }
    });
    drop(rows_cell);
    rows.into_iter()
        .map(|r| r.expect("all rows computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_graph::GraphBuilder;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// Ring of `k` nodes.
    fn ring(k: u32) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for i in 0..k {
            b.add_edge(n(i), n((i + 1) % k));
        }
        b.build().unwrap()
    }

    #[test]
    fn selects_requested_count_when_possible() {
        let g = ring(64);
        let lm = Landmarks::build(
            &g,
            &LandmarkConfig {
                count: 8,
                min_separation: 3,
            },
        );
        assert_eq!(lm.len(), 8);
        assert_eq!(lm.dist.len(), 8);
        assert_eq!(lm.dist[0].len(), 64);
    }

    #[test]
    fn separation_is_respected() {
        let g = ring(64);
        let lm = Landmarks::build(
            &g,
            &LandmarkConfig {
                count: 10,
                min_separation: 4,
            },
        );
        for i in 0..lm.len() {
            for j in (i + 1)..lm.len() {
                let d = lm.landmark_distance(i, j);
                assert!(d >= 4, "landmarks {i},{j} at distance {d}");
            }
        }
    }

    #[test]
    fn high_degree_nodes_win() {
        // Star plus a path: the hub must be the first landmark.
        let mut b = GraphBuilder::new();
        for i in 1..=10 {
            b.add_edge(n(0), n(i));
        }
        for i in 10..15 {
            b.add_edge(n(i), n(i + 1));
        }
        let g = b.build().unwrap();
        let lm = Landmarks::build(
            &g,
            &LandmarkConfig {
                count: 2,
                min_separation: 2,
            },
        );
        assert_eq!(lm.nodes[0], n(0));
    }

    #[test]
    fn distances_match_bfs() {
        let g = ring(16);
        let lm = Landmarks::build(
            &g,
            &LandmarkConfig {
                count: 2,
                min_separation: 3,
            },
        );
        let l0 = lm.nodes[0];
        let truth = bfs_distances(&g, l0, Direction::Both);
        for v in g.nodes() {
            assert_eq!(lm.distance(0, v) as u32, truth[v.index()]);
        }
    }

    #[test]
    fn triangle_inequality_bounds_hold() {
        let g = ring(24);
        let lm = Landmarks::build(
            &g,
            &LandmarkConfig {
                count: 4,
                min_separation: 3,
            },
        );
        // Ring distance between nodes 2 and 7 is 5.
        let (u, v) = (n(2), n(7));
        let lo = lm.distance_lower_bound(u, v).unwrap();
        let hi = lm.distance_upper_bound(u, v).unwrap();
        assert!(lo <= 5, "lower bound {lo}");
        assert!(hi >= 5, "upper bound {hi}");
    }

    #[test]
    fn unreachable_marked() {
        // Two disconnected rings.
        let mut b = GraphBuilder::new();
        for i in 0..8u32 {
            b.add_edge(n(i), n((i + 1) % 8));
        }
        for i in 8..16u32 {
            b.add_edge(n(i), n(8 + (i + 1 - 8) % 8));
        }
        let g = b.build().unwrap();
        let lm = Landmarks::build(
            &g,
            &LandmarkConfig {
                count: 1,
                min_separation: 2,
            },
        );
        let reached = (0..16u32)
            .filter(|&v| lm.distance(0, n(v)) != UNREACHED_U16)
            .count();
        assert_eq!(reached, 8);
    }

    #[test]
    fn storage_bytes_is_linear_in_n() {
        let g = ring(100);
        let lm = Landmarks::build(
            &g,
            &LandmarkConfig {
                count: 5,
                min_separation: 2,
            },
        );
        assert_eq!(lm.storage_bytes(), 5 * 100 * 2 + 5 * 4);
    }

    #[test]
    fn isolated_nodes_never_selected() {
        let mut b = GraphBuilder::with_nodes(20);
        b.add_edge(n(0), n(1));
        let g = b.build().unwrap();
        let lm = Landmarks::build(
            &g,
            &LandmarkConfig {
                count: 10,
                min_separation: 1,
            },
        );
        assert!(lm.len() <= 2);
        for &l in &lm.nodes {
            assert!(g.degree(l) > 0);
        }
    }
}
