//! Relative-error evaluation of an embedding (Eq. 4, Figure 12(a)).

use grouting_graph::traversal::{bfs_within, Direction};
use grouting_graph::{CsrGraph, NodeId};

use crate::embedding::Embedding;

/// Mean relative error over explicit `(u, v, hop_distance)` triples.
pub fn mean_relative_error(embedding: &Embedding, pairs: &[(NodeId, NodeId, u32)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let total: f64 = pairs
        .iter()
        .map(|&(u, v, d)| {
            let e = embedding.distance(u, v);
            (d as f64 - e).abs() / (d as f64).max(1.0)
        })
        .sum();
    total / pairs.len() as f64
}

/// Samples node pairs within `max_hops` of hotspot centres — the "2-hop
/// hotspot" pair population of Figure 12(a) — with exact hop distances.
pub fn hotspot_pairs(
    g: &CsrGraph,
    centers: &[NodeId],
    max_hops: u32,
    per_center: usize,
) -> Vec<(NodeId, NodeId, u32)> {
    let mut pairs = Vec::new();
    for &c in centers {
        let ball = bfs_within(g, c, max_hops, Direction::Both);
        // Pair the centre with each ball member (exact distance from BFS).
        for &(v, d) in ball.iter().skip(1).take(per_center) {
            pairs.push((c, v, d));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::EmbeddingConfig;
    use crate::landmarks::{LandmarkConfig, Landmarks};
    use grouting_graph::GraphBuilder;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn ring(k: u32) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for i in 0..k {
            b.add_edge(n(i), n((i + 1) % k));
        }
        b.build().unwrap()
    }

    #[test]
    fn zero_error_for_perfect_pairs() {
        let g = ring(24);
        let lm = Landmarks::build(
            &g,
            &LandmarkConfig {
                count: 4,
                min_separation: 2,
            },
        );
        let emb = Embedding::build(
            &lm,
            &EmbeddingConfig {
                dimensions: 4,
                ..Default::default()
            },
        );
        // Error against itself at distance "embedding distance" would be 0;
        // here we check the function arithmetic with synthetic pairs.
        let d01 = emb.distance(n(0), n(1));
        let pairs = vec![(n(0), n(1), d01.round() as u32)];
        let err = mean_relative_error(&emb, &pairs);
        assert!(err < 0.5);
        assert_eq!(mean_relative_error(&emb, &[]), 0.0);
    }

    #[test]
    fn hotspot_pairs_have_exact_distances() {
        let g = ring(32);
        let pairs = hotspot_pairs(&g, &[n(0), n(16)], 2, 10);
        assert!(!pairs.is_empty());
        for (u, v, d) in pairs {
            assert!((1..=2).contains(&d), "pair {u} {v} at {d}");
            let truth = grouting_graph::traversal::hop_distance(&g, u, v, Direction::Both);
            assert_eq!(truth, Some(d));
        }
    }

    #[test]
    fn embedding_error_reasonable_on_ring() {
        let g = ring(48);
        let lm = Landmarks::build(
            &g,
            &LandmarkConfig {
                count: 8,
                min_separation: 6,
            },
        );
        let emb = Embedding::build(
            &lm,
            &EmbeddingConfig {
                dimensions: 6,
                landmark_sweeps: 2,
                landmark_iters: 200,
                node_iters: 80,
                nearest_landmarks: 8,
                seed: 3,
            },
        );
        let centers: Vec<NodeId> = (0..6).map(|i| n(i * 8)).collect();
        let pairs = hotspot_pairs(&g, &centers, 2, 8);
        let err = mean_relative_error(&emb, &pairs);
        // The paper's own Figure 12(a) reports relative errors between ~1
        // and ~4 for 2-hop hotspot pairs; nearby (1–2 hop) pairs are the
        // hardest to preserve, so we only bound the error to that range.
        assert!(err < 4.0, "relative error {err}");
    }
}
