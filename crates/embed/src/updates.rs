//! Incremental preprocessing maintenance under graph updates (§3.4).
//!
//! The paper's rules:
//!
//! * **node added** — compute its distance to every landmark, then its
//!   `d(u, p)` row (landmark routing) or its coordinates (embed routing);
//! * **edge added/removed** — recompute the same for both endpoints and
//!   their neighbours up to a small hop radius (default 2);
//! * **node removed** — treated as removal of its incident edges;
//! * after many updates the full preprocessing is redone offline
//!   ([`StalenessTracker`] decides when).

use std::collections::VecDeque;

use grouting_graph::dynamic::{DynamicGraph, GraphUpdate};
use grouting_graph::NodeId;

use crate::embedding::{Embedding, EmbeddingConfig};
use crate::pivots::ProcessorDistanceTable;
use crate::UNREACHED_U16;

/// Distances from `node` to every landmark on the *current* dynamic graph,
/// via a single bi-directed BFS from the node that stops once all landmarks
/// are found (or the component is exhausted).
pub fn landmark_distances_from(g: &DynamicGraph, node: NodeId, landmarks: &[NodeId]) -> Vec<u16> {
    let mut out = vec![UNREACHED_U16; landmarks.len()];
    if !g.contains(node) {
        return out;
    }
    let index: std::collections::HashMap<NodeId, usize> =
        landmarks.iter().enumerate().map(|(i, &l)| (l, i)).collect();
    let mut remaining = index.len();
    let mut dist: std::collections::HashMap<NodeId, u32> = std::collections::HashMap::new();
    let mut queue = VecDeque::new();
    dist.insert(node, 0);
    queue.push_back(node);
    if let Some(&i) = index.get(&node) {
        out[i] = 0;
        remaining -= 1;
    }
    while let Some(v) = queue.pop_front() {
        if remaining == 0 {
            break;
        }
        let dv = dist[&v];
        let next = dv + 1;
        let neighbors: Vec<NodeId> = g.out_neighbors(v).chain(g.in_neighbors(v)).collect();
        for w in neighbors {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                e.insert(next);
                if let Some(&i) = index.get(&w) {
                    if out[i] == UNREACHED_U16 {
                        out[i] = next.min((UNREACHED_U16 - 1) as u32) as u16;
                        remaining -= 1;
                    }
                }
                queue.push_back(w);
            }
        }
    }
    out
}

/// Applies one update to a landmark-routing table in place.
///
/// Touched nodes (endpoints plus `hops`-hop neighbours) get fresh
/// `d(u, p)` rows computed from single-source BFS on the updated graph.
pub fn refresh_landmark_table(
    table: &mut ProcessorDistanceTable,
    g: &DynamicGraph,
    landmarks: &[NodeId],
    update: GraphUpdate,
    hops: u32,
) {
    for v in g.affected_nodes(update, hops) {
        if !g.contains(v) {
            continue;
        }
        let vector = landmark_distances_from(g, v, landmarks);
        let row = table.row_from_landmark_vector(&vector);
        if v.index() <= table.nodes() {
            table.set_row(v, &row);
        }
    }
}

/// Applies one update to an embedding in place (same affected-set rule).
pub fn refresh_embedding(
    embedding: &mut Embedding,
    g: &DynamicGraph,
    update: GraphUpdate,
    hops: u32,
    config: &EmbeddingConfig,
) {
    let landmark_ids = embedding.landmark_ids().to_vec();
    for v in g.affected_nodes(update, hops) {
        if !g.contains(v) {
            continue;
        }
        let dists = landmark_distances_from(g, v, &landmark_ids);
        let point = embedding.embed_from_landmark_distances(&dists, config);
        if v.index() <= embedding.node_count() {
            embedding.set_coords(v, &point);
        }
    }
}

/// Counts updates and signals when a full offline re-preprocessing is due
/// ("after a significant number of updates, previously selected landmark
/// nodes become less effective; thus we recompute the entire preprocessing
/// step periodically").
#[derive(Debug, Clone)]
pub struct StalenessTracker {
    updates: u64,
    threshold: u64,
}

impl StalenessTracker {
    /// Recommends re-preprocessing after `threshold` updates.
    pub fn new(threshold: u64) -> Self {
        Self {
            updates: 0,
            threshold: threshold.max(1),
        }
    }

    /// Records one update; returns `true` when the threshold is crossed.
    pub fn record(&mut self) -> bool {
        self.updates += 1;
        self.updates >= self.threshold
    }

    /// Updates seen since the last reset.
    pub fn pending(&self) -> u64 {
        self.updates
    }

    /// Resets after a full re-preprocessing.
    pub fn reset(&mut self) {
        self.updates = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landmarks::{LandmarkConfig, Landmarks};
    use grouting_graph::{CsrGraph, GraphBuilder};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn ring(k: u32) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for i in 0..k {
            b.add_edge(n(i), n((i + 1) % k));
        }
        b.build().unwrap()
    }

    #[test]
    fn bfs_distances_match_static_maps() {
        let g = ring(24);
        let lm = Landmarks::build(
            &g,
            &LandmarkConfig {
                count: 4,
                min_separation: 2,
            },
        );
        let dyn_g = DynamicGraph::from_csr(&g);
        for v in [n(0), n(5), n(13)] {
            let fresh = landmark_distances_from(&dyn_g, v, &lm.nodes);
            assert_eq!(fresh, lm.node_vector(v), "node {v}");
        }
    }

    #[test]
    fn new_node_gets_row_and_coords() {
        let g = ring(16);
        let lm = Landmarks::build(
            &g,
            &LandmarkConfig {
                count: 4,
                min_separation: 2,
            },
        );
        let mut table = ProcessorDistanceTable::build(&lm, 2);
        let mut dyn_g = DynamicGraph::from_csr(&g);

        // Attach node 16 to node 3.
        dyn_g.add_edge(n(16), n(3));
        refresh_landmark_table(
            &mut table,
            &dyn_g,
            &lm.nodes,
            GraphUpdate::AddEdge(n(16), n(3)),
            1,
        );
        assert_eq!(table.nodes(), 17);
        // Its distances should be node 3's plus one (through the new edge).
        let d3 = table.row(n(3)).to_vec();
        let d16 = table.row(n(16)).to_vec();
        for (a, b) in d16.iter().zip(&d3) {
            assert!(*a <= b + 1, "row16 {d16:?} row3 {d3:?}");
        }
    }

    #[test]
    fn edge_update_refreshes_embedding_locally() {
        let g = ring(16);
        let lm = Landmarks::build(
            &g,
            &LandmarkConfig {
                count: 4,
                min_separation: 2,
            },
        );
        let cfg = EmbeddingConfig {
            dimensions: 4,
            landmark_sweeps: 1,
            landmark_iters: 150,
            node_iters: 60,
            nearest_landmarks: 4,
            seed: 5,
        };
        let mut emb = Embedding::build(&lm, &cfg);
        let before_far = emb.coords(n(12)).to_vec();
        let mut dyn_g = DynamicGraph::from_csr(&g);
        dyn_g.add_edge(n(0), n(8));
        refresh_embedding(&mut emb, &dyn_g, GraphUpdate::AddEdge(n(0), n(8)), 1, &cfg);
        // Node 12 is outside the 1-hop affected set: untouched.
        assert_eq!(emb.coords(n(12)), &before_far[..]);
    }

    #[test]
    fn staleness_tracker_thresholds() {
        let mut t = StalenessTracker::new(3);
        assert!(!t.record());
        assert!(!t.record());
        assert!(t.record());
        assert_eq!(t.pending(), 3);
        t.reset();
        assert_eq!(t.pending(), 0);
        assert!(!t.record());
    }

    #[test]
    fn distances_from_missing_node_all_unreached() {
        let g = ring(8);
        let lm = Landmarks::build(
            &g,
            &LandmarkConfig {
                count: 2,
                min_separation: 2,
            },
        );
        let dyn_g = DynamicGraph::from_csr(&g);
        let d = landmark_distances_from(&dyn_g, n(99), &lm.nodes);
        assert!(d.iter().all(|&x| x == UNREACHED_U16));
    }
}
