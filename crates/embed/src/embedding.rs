//! Graph embedding into a low-dimensional Euclidean space (§3.4.2).
//!
//! "We embed a graph into a lower dimensional Euclidean space such that the
//! hop-count distance between graph nodes are approximately preserved via
//! their Euclidean distance."
//!
//! The pipeline mirrors the paper (and Orion [36], which it builds on):
//!
//! 1. landmarks are embedded first, minimising the pairwise *relative*
//!    distance error (Eq. 4) with Simplex Downhill — incrementally (each
//!    landmark against those already placed) plus full refinement sweeps;
//! 2. every other node is embedded independently (parallelisable) against
//!    its nearest landmarks, again with Simplex Downhill;
//! 3. coordinates are stored as `f32` — 4 bytes × D per node, which at
//!    D = 10 reproduces Table 3's 4 GB for the 106 M-node WebGraph.

use grouting_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::landmarks::Landmarks;
use crate::simplex::{minimize, SimplexOptions};
use crate::UNREACHED_U16;

/// Tuning for the embedding pipeline.
#[derive(Debug, Clone, Copy)]
pub struct EmbeddingConfig {
    /// Euclidean dimensionality D (the paper settles on 10).
    pub dimensions: usize,
    /// Full re-embedding sweeps over the landmark set after the incremental
    /// placement pass.
    pub landmark_sweeps: usize,
    /// Simplex iterations per landmark placement.
    pub landmark_iters: usize,
    /// Simplex iterations per node placement.
    pub node_iters: usize,
    /// Each node's objective uses its closest `k` landmarks (Orion-style),
    /// keeping per-node cost independent of |L|.
    pub nearest_landmarks: usize,
    /// Seed for initial coordinates.
    pub seed: u64,
}

impl Default for EmbeddingConfig {
    fn default() -> Self {
        Self {
            dimensions: 10,
            landmark_sweeps: 3,
            landmark_iters: 400,
            node_iters: 60,
            nearest_landmarks: 16,
            seed: 0x0410,
        }
    }
}

/// Node coordinates in the embedded space.
#[derive(Debug, Clone)]
pub struct Embedding {
    dim: usize,
    /// Row-major `coords[v * dim ..][..dim]`, `f32` per Table 3.
    coords: Vec<f32>,
    nodes: usize,
    /// Landmark ids in the order their coordinates appear below.
    landmark_ids: Vec<NodeId>,
    /// Landmark coordinates kept at `f64` for re-embedding new nodes.
    landmark_coords: Vec<f64>,
}

/// The relative-error term of Eq. 4 for one (graph-distance, point) pair.
#[inline]
fn relative_error_term(graph_d: f64, euclid_d: f64) -> f64 {
    (graph_d - euclid_d).abs() / graph_d.max(1.0)
}

fn euclid(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

impl Embedding {
    /// Embeds every node of the graph underlying `landmarks`.
    ///
    /// # Panics
    ///
    /// Panics if `landmarks` is empty or `config.dimensions == 0`.
    pub fn build(landmarks: &Landmarks, config: &EmbeddingConfig) -> Self {
        assert!(!landmarks.is_empty(), "cannot embed without landmarks");
        assert!(config.dimensions > 0, "zero dimensions");
        let d = config.dimensions;
        let n = landmarks.dist[0].len();

        let landmark_coords = embed_landmarks(landmarks, config);

        // Per-node embedding, parallel over chunks of nodes.
        let mut coords = vec![0f32; n * d];
        let threads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1)
            .min(n.max(1));
        let landmark_lookup: std::collections::HashMap<NodeId, usize> = landmarks
            .nodes
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();

        {
            let chunk = n.div_ceil(threads).max(1);
            let lc = &landmark_coords;
            let lk = &landmark_lookup;
            let chunks: Vec<(usize, &mut [f32])> = coords
                .chunks_mut(chunk * d)
                .enumerate()
                .map(|(i, c)| (i * chunk, c))
                .collect();
            std::thread::scope(|scope| {
                for (start, slice) in chunks {
                    scope.spawn(move || {
                        for (row, out) in slice.chunks_mut(d).enumerate() {
                            let v = NodeId::new((start + row) as u32);
                            let point = if let Some(&li) = lk.get(&v) {
                                lc[li * d..(li + 1) * d].to_vec()
                            } else {
                                embed_node(landmarks, lc, v, config)
                            };
                            for (o, p) in out.iter_mut().zip(&point) {
                                *o = *p as f32;
                            }
                        }
                    });
                }
            });
        }

        Self {
            dim: d,
            coords,
            nodes: n,
            landmark_ids: landmarks.nodes.clone(),
            landmark_coords,
        }
    }

    /// Dimensionality D.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of embedded nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Coordinates of `node`.
    #[inline]
    pub fn coords(&self, node: NodeId) -> &[f32] {
        let start = node.index() * self.dim;
        &self.coords[start..start + self.dim]
    }

    /// Euclidean distance between two embedded nodes.
    pub fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        self.coords(u)
            .iter()
            .zip(self.coords(v))
            .map(|(a, b)| (*a as f64 - *b as f64).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    /// The landmark ids used for this embedding.
    pub fn landmark_ids(&self) -> &[NodeId] {
        &self.landmark_ids
    }

    /// Embeds a *new* node given its distances to the landmarks (the
    /// paper's incremental update path) and returns its coordinates.
    pub fn embed_from_landmark_distances(
        &self,
        dists: &[u16],
        config: &EmbeddingConfig,
    ) -> Vec<f32> {
        let point = embed_vector(
            dists,
            &self.landmark_coords,
            self.dim,
            config,
            0xFEED ^ dists.len() as u64,
        );
        point.into_iter().map(|x| x as f32).collect()
    }

    /// Overwrites (or appends, when `node` is the next id) coordinates.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or a gap beyond the current node range.
    pub fn set_coords(&mut self, node: NodeId, point: &[f32]) {
        assert_eq!(point.len(), self.dim, "dimension mismatch");
        let start = node.index() * self.dim;
        if start + self.dim <= self.coords.len() {
            self.coords[start..start + self.dim].copy_from_slice(point);
        } else if node.index() == self.nodes {
            self.coords.extend_from_slice(point);
            self.nodes += 1;
        } else {
            panic!("coords for node {node} beyond embedding end");
        }
    }

    /// Bytes held by the coordinate table (Table 3 accounting): 4·D per
    /// node.
    pub fn storage_bytes(&self) -> usize {
        self.coords.len() * 4
    }
}

/// Places the landmarks: incremental insert, then full refinement sweeps.
fn embed_landmarks(landmarks: &Landmarks, config: &EmbeddingConfig) -> Vec<f64> {
    let d = config.dimensions;
    let l = landmarks.len();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut coords = vec![0f64; l * d];

    let ld = |i: usize, j: usize| -> Option<f64> {
        let v = landmarks.landmark_distance(i, j);
        (v != UNREACHED_U16).then_some(v as f64)
    };

    // Incremental placement: landmark 0 at the origin; each next landmark
    // minimises error against those already placed.
    for i in 1..l {
        let placed = i;
        let objective = |x: &[f64]| -> f64 {
            let mut sum = 0.0;
            for j in 0..placed {
                if let Some(dij) = ld(i, j) {
                    let e = euclid(x, &coords[j * d..(j + 1) * d]);
                    sum += relative_error_term(dij, e);
                }
            }
            sum
        };
        // Seed near the first placed landmark it can see, jittered.
        let radius = ld(i, 0).unwrap_or(1.0);
        let seed_point: Vec<f64> = (0..d).map(|_| (rng.gen::<f64>() - 0.5) * radius).collect();
        let r = minimize(
            objective,
            &seed_point,
            &SimplexOptions {
                max_iters: config.landmark_iters,
                tolerance: 1e-9,
                initial_step: (radius / 4.0).max(0.25),
            },
        );
        coords[i * d..(i + 1) * d].copy_from_slice(&r.point);
    }

    // Refinement sweeps: re-place each landmark against all the others.
    for _ in 0..config.landmark_sweeps {
        for i in 0..l {
            let current = coords[i * d..(i + 1) * d].to_vec();
            let objective = |x: &[f64]| -> f64 {
                let mut sum = 0.0;
                for j in 0..l {
                    if j == i {
                        continue;
                    }
                    if let Some(dij) = ld(i, j) {
                        let e = euclid(x, &coords[j * d..(j + 1) * d]);
                        sum += relative_error_term(dij, e);
                    }
                }
                sum
            };
            let r = minimize(
                objective,
                &current,
                &SimplexOptions {
                    max_iters: config.landmark_iters / 2,
                    tolerance: 1e-9,
                    initial_step: 0.5,
                },
            );
            coords[i * d..(i + 1) * d].copy_from_slice(&r.point);
        }
    }
    coords
}

/// Embeds one non-landmark node against its nearest landmarks.
fn embed_node(
    landmarks: &Landmarks,
    landmark_coords: &[f64],
    v: NodeId,
    config: &EmbeddingConfig,
) -> Vec<f64> {
    let dists = landmarks.node_vector(v);
    embed_vector(
        &dists,
        landmark_coords,
        config.dimensions,
        config,
        0x9E37 ^ v.raw() as u64,
    )
}

/// Embeds a point from a landmark-distance vector (shared by initial build
/// and incremental updates).
pub(crate) fn embed_vector(
    dists: &[u16],
    landmark_coords: &[f64],
    d: usize,
    config: &EmbeddingConfig,
    seed: u64,
) -> Vec<f64> {
    // Pick the nearest reachable landmarks.
    let mut reachable: Vec<(usize, u16)> = dists
        .iter()
        .enumerate()
        .filter(|&(_, &x)| x != UNREACHED_U16)
        .map(|(i, &x)| (i, x))
        .collect();
    if reachable.is_empty() {
        // Disconnected from every landmark: place deterministically far out
        // so such nodes cluster away from the embedded mass.
        let mut rng = StdRng::seed_from_u64(seed);
        return (0..d).map(|_| 1e4 + rng.gen::<f64>() * 1e3).collect();
    }
    reachable.sort_by_key(|&(_, x)| x);
    reachable.truncate(config.nearest_landmarks.max(1));

    // Seed at the weighted centroid of the chosen landmarks (closer ⇒
    // heavier).
    let mut seed_point = vec![0f64; d];
    let mut total_w = 0f64;
    for &(i, dist) in &reachable {
        let w = 1.0 / (dist as f64 + 1.0);
        for (s, c) in seed_point
            .iter_mut()
            .zip(&landmark_coords[i * d..(i + 1) * d])
        {
            *s += w * c;
        }
        total_w += w;
    }
    for s in &mut seed_point {
        *s /= total_w;
    }

    let objective = |x: &[f64]| -> f64 {
        reachable
            .iter()
            .map(|&(i, dist)| {
                let e = euclid(x, &landmark_coords[i * d..(i + 1) * d]);
                relative_error_term(dist as f64, e)
            })
            .sum()
    };
    minimize(
        objective,
        &seed_point,
        &SimplexOptions {
            max_iters: config.node_iters,
            tolerance: 1e-7,
            initial_step: 0.5,
        },
    )
    .point
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landmarks::LandmarkConfig;
    use grouting_graph::{CsrGraph, GraphBuilder};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn ring(k: u32) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for i in 0..k {
            b.add_edge(n(i), n((i + 1) % k));
        }
        b.build().unwrap()
    }

    fn quick_config(dim: usize) -> EmbeddingConfig {
        EmbeddingConfig {
            dimensions: dim,
            landmark_sweeps: 2,
            landmark_iters: 200,
            node_iters: 80,
            nearest_landmarks: 8,
            seed: 7,
        }
    }

    fn ring_embedding(k: u32, landmarks: usize, dim: usize) -> (Embedding, Landmarks, CsrGraph) {
        let g = ring(k);
        // Rings have uniform degree, so the degree rule alone would cluster
        // landmarks at low ids; a separation of k/|L| spreads them evenly,
        // matching the paper's "how well they spread over the entire graph".
        let lm = Landmarks::build(
            &g,
            &LandmarkConfig {
                count: landmarks,
                min_separation: (k as usize / landmarks).max(2) as u32,
            },
        );
        let emb = Embedding::build(&lm, &quick_config(dim));
        (emb, lm, g)
    }

    #[test]
    fn dimensions_and_storage() {
        let (emb, _, g) = ring_embedding(32, 6, 5);
        assert_eq!(emb.dim(), 5);
        assert_eq!(emb.node_count(), g.node_count());
        assert_eq!(emb.storage_bytes(), 32 * 5 * 4);
    }

    #[test]
    fn nearby_nodes_are_close_far_nodes_are_far() {
        let (emb, _, _) = ring_embedding(48, 8, 6);
        // Average embedded distance of ring-adjacent pairs should be far
        // below that of ring-antipodal pairs.
        let mut near = 0.0;
        let mut far = 0.0;
        for v in 0..48u32 {
            near += emb.distance(n(v), n((v + 1) % 48));
            far += emb.distance(n(v), n((v + 24) % 48));
        }
        assert!(
            near * 3.0 < far,
            "near avg {} vs far avg {}",
            near / 48.0,
            far / 48.0
        );
    }

    #[test]
    fn landmark_pairwise_distances_roughly_preserved() {
        let (emb, lm, _) = ring_embedding(40, 6, 8);
        let mut total_err = 0.0;
        let mut pairs = 0;
        for i in 0..lm.len() {
            for j in (i + 1)..lm.len() {
                let gd = lm.landmark_distance(i, j) as f64;
                let ed = emb.distance(lm.nodes[i], lm.nodes[j]);
                total_err += (gd - ed).abs() / gd.max(1.0);
                pairs += 1;
            }
        }
        let mean = total_err / pairs as f64;
        assert!(mean < 0.35, "mean landmark relative error {mean}");
    }

    #[test]
    fn higher_dimensions_reduce_error() {
        let (emb2, lm, _) = ring_embedding(40, 8, 2);
        let g = ring(40);
        let lm8 = Landmarks::build(
            &g,
            &LandmarkConfig {
                count: 8,
                min_separation: 2,
            },
        );
        let emb8 = Embedding::build(&lm8, &quick_config(8));
        let err = |emb: &Embedding, lm: &Landmarks| -> f64 {
            let mut t = 0.0;
            let mut c = 0;
            for i in 0..lm.len() {
                for j in (i + 1)..lm.len() {
                    let gd = lm.landmark_distance(i, j) as f64;
                    t += (gd - emb.distance(lm.nodes[i], lm.nodes[j])).abs() / gd.max(1.0);
                    c += 1;
                }
            }
            t / c as f64
        };
        let e2 = err(&emb2, &lm);
        let e8 = err(&emb8, &lm8);
        assert!(
            e8 <= e2 + 0.05,
            "8D error {e8} should not exceed 2D error {e2}"
        );
    }

    #[test]
    fn incremental_embed_lands_near_neighbors() {
        let (emb, lm, _) = ring_embedding(32, 6, 6);
        // Pretend node 5 is new: embed it from its landmark distances.
        let dists = lm.node_vector(n(5));
        let point = emb.embed_from_landmark_distances(&dists, &quick_config(6));
        let old = emb.coords(n(5));
        let drift: f64 = point
            .iter()
            .zip(old)
            .map(|(a, b)| (*a as f64 - *b as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        // Same inputs, same objective: the re-embedded point must be close
        // to the original placement (not exact: different seeds).
        assert!(drift < 3.0, "drift {drift}");
    }

    #[test]
    fn set_coords_appends() {
        let (mut emb, _, _) = ring_embedding(16, 4, 3);
        emb.set_coords(n(16), &[1.0, 2.0, 3.0]);
        assert_eq!(emb.node_count(), 17);
        assert_eq!(emb.coords(n(16)), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn disconnected_nodes_placed_far_away() {
        let mut b = GraphBuilder::with_nodes(20);
        for i in 0..10u32 {
            b.add_edge(n(i), n((i + 1) % 10));
        }
        // Nodes 10..19 are isolated.
        let g = b.build().unwrap();
        let lm = Landmarks::build(
            &g,
            &LandmarkConfig {
                count: 3,
                min_separation: 2,
            },
        );
        let emb = Embedding::build(&lm, &quick_config(4));
        let far = emb.distance(n(0), n(15));
        let near = emb.distance(n(0), n(1));
        assert!(far > 100.0 * near.max(0.1), "far {far} near {near}");
    }

    #[test]
    #[should_panic(expected = "zero dimensions")]
    fn rejects_zero_dimensions() {
        let g = ring(8);
        let lm = Landmarks::build(
            &g,
            &LandmarkConfig {
                count: 2,
                min_separation: 2,
            },
        );
        let mut cfg = quick_config(1);
        cfg.dimensions = 0;
        let _ = Embedding::build(&lm, &cfg);
    }
}
