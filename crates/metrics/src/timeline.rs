//! Per-query event timeline used to derive latency and utilisation.

use crate::{Histogram, Nanos, ThroughputMeter};

/// One query's lifecycle timestamps inside a runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryRecord {
    /// Query sequence number as issued by the workload.
    pub seq: u64,
    /// Time the router received the query.
    pub arrived: Nanos,
    /// Time a processor started executing it.
    pub started: Nanos,
    /// Time the processor acknowledged completion.
    pub completed: Nanos,
    /// Processor that executed the query.
    pub processor: usize,
}

impl QueryRecord {
    /// End-to-end latency (arrival to completion).
    pub fn latency(&self) -> Nanos {
        self.completed.saturating_sub(self.arrived)
    }

    /// Time spent waiting in router/processor queues before execution.
    pub fn queueing(&self) -> Nanos {
        self.started.saturating_sub(self.arrived)
    }

    /// Pure execution time on the processor.
    pub fn service(&self) -> Nanos {
        self.completed.saturating_sub(self.started)
    }
}

/// Collects [`QueryRecord`]s and derives the paper's evaluation metrics.
#[derive(Debug, Default, Clone)]
pub struct Timeline {
    records: Vec<QueryRecord>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one completed-query record.
    pub fn push(&mut self, record: QueryRecord) {
        self.records.push(record);
    }

    /// All recorded queries in completion order.
    pub fn records(&self) -> &[QueryRecord] {
        &self.records
    }

    /// Number of recorded queries.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Mean end-to-end response time in nanoseconds, `None` when empty.
    pub fn mean_response_time(&self) -> Option<f64> {
        self.latency_histogram().mean()
    }

    /// Builds a histogram over per-query latency.
    pub fn latency_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for r in &self.records {
            h.record(r.latency());
        }
        h
    }

    /// Builds a throughput meter over the whole run.
    pub fn throughput(&self) -> ThroughputMeter {
        let mut m = ThroughputMeter::new();
        if let Some(first) = self.records.iter().map(|r| r.arrived).min() {
            m.start_at(first);
        }
        for r in &self.records {
            m.complete_at(r.completed);
        }
        m
    }

    /// Queries executed per processor, for load-balance inspection.
    pub fn per_processor_counts(&self, processors: usize) -> Vec<u64> {
        let mut counts = vec![0u64; processors];
        for r in &self.records {
            if r.processor < processors {
                counts[r.processor] += 1;
            }
        }
        counts
    }

    /// Coefficient of variation of per-processor query counts.
    ///
    /// Zero means perfectly balanced; used by tests to assert that query
    /// stealing keeps skewed workloads balanced.
    pub fn load_imbalance(&self, processors: usize) -> f64 {
        let counts = self.per_processor_counts(processors);
        if counts.is_empty() {
            return 0.0;
        }
        let n = counts.len() as f64;
        let mean = counts.iter().sum::<u64>() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, arrived: Nanos, started: Nanos, completed: Nanos, p: usize) -> QueryRecord {
        QueryRecord {
            seq,
            arrived,
            started,
            completed,
            processor: p,
        }
    }

    #[test]
    fn record_decomposition() {
        let r = rec(0, 100, 150, 400, 0);
        assert_eq!(r.latency(), 300);
        assert_eq!(r.queueing(), 50);
        assert_eq!(r.service(), 250);
    }

    #[test]
    fn mean_response_time() {
        let mut t = Timeline::new();
        t.push(rec(0, 0, 0, 100, 0));
        t.push(rec(1, 0, 100, 300, 1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.mean_response_time(), Some(200.0));
    }

    #[test]
    fn per_processor_counts_and_imbalance() {
        let mut t = Timeline::new();
        for i in 0..8 {
            t.push(rec(i, 0, 0, 10, (i % 2) as usize));
        }
        assert_eq!(t.per_processor_counts(2), vec![4, 4]);
        assert_eq!(t.load_imbalance(2), 0.0);

        let mut skew = Timeline::new();
        for i in 0..8 {
            skew.push(rec(i, 0, 0, 10, 0));
        }
        assert!(skew.load_imbalance(2) > 0.9);
    }

    #[test]
    fn throughput_from_timeline() {
        let mut t = Timeline::new();
        t.push(rec(0, 0, 0, 500_000_000, 0));
        t.push(rec(1, 0, 0, 1_000_000_000, 1));
        let qps = t.throughput().qps().unwrap();
        assert!((qps - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_timeline() {
        let t = Timeline::new();
        assert!(t.is_empty());
        assert_eq!(t.mean_response_time(), None);
        assert_eq!(t.load_imbalance(4), 0.0);
    }
}
