//! A tiny leveled stderr logger shared by every gRouting crate.
//!
//! The runtimes used to scatter ad-hoc `eprintln!` warnings (bad env
//! values, fallback decisions); this module gives them one levelled
//! funnel with zero dependencies. The threshold comes from
//! `GROUTING_LOG=error|warn|info|debug` (default `warn`), read once on
//! first use; tests and embedders can override it with [`set_level`].
//!
//! Call sites use the exported macros, which skip formatting entirely
//! when the level is disabled:
//!
//! ```
//! grouting_metrics::log_warn!("cache over budget by {} bytes", 42);
//! grouting_metrics::log_debug!("telemetry: {} frames", 7);
//! ```

use std::cell::RefCell;
use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or data-losing conditions.
    Error = 0,
    /// Suspicious configuration or masked degradation (the default
    /// threshold).
    Warn = 1,
    /// Notable lifecycle events.
    Info = 2,
    /// High-volume diagnostics (telemetry samples, span dumps).
    Debug = 3,
}

impl Level {
    /// The lowercase name used in output and in `GROUTING_LOG`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        }
    }

    /// Parses a `GROUTING_LOG` value; `None` on unknown spellings.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Sentinel for "not yet initialised from the environment".
const UNSET: u8 = u8::MAX;

static THRESHOLD: AtomicU8 = AtomicU8::new(UNSET);

fn threshold() -> Level {
    let raw = THRESHOLD.load(Ordering::Relaxed);
    if raw != UNSET {
        return Level::from_u8(raw);
    }
    let level = match std::env::var("GROUTING_LOG") {
        Ok(v) => Level::parse(&v).unwrap_or_else(|| {
            // Can't recurse through the logger while initialising it.
            eprintln!("[grouting warn] unknown GROUTING_LOG value {v:?}; using `warn`");
            Level::Warn
        }),
        Err(_) => Level::Warn,
    };
    // A racing initialiser computed the same value; either store wins.
    THRESHOLD.store(level as u8, Ordering::Relaxed);
    level
}

/// Whether messages at `level` currently pass the threshold.
#[inline]
pub fn enabled(level: Level) -> bool {
    level <= threshold()
}

/// Overrides the threshold (normally read once from `GROUTING_LOG`).
pub fn set_level(level: Level) {
    THRESHOLD.store(level as u8, Ordering::Relaxed);
}

thread_local! {
    /// The node identity of the current thread ("router", "proc-2",
    /// "storage-0") — every service tier runs as its own thread, so a
    /// thread-local is exactly one node's identity.
    static NODE_ROLE: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Tags every record this thread emits with a node identity, so chaos
/// runs with interleaved multi-node stderr stay attributable. Service
/// threads call this once at startup; pass e.g. `"proc-3"`.
pub fn set_node_role(role: impl Into<String>) {
    NODE_ROLE.with(|r| *r.borrow_mut() = Some(role.into()));
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Writes one record to stderr, prefixed with seconds since the process's
/// first log record and this thread's node role (when set). Prefer the
/// `log_*` macros, which check [`enabled`] before formatting.
pub fn emit(level: Level, args: fmt::Arguments<'_>) {
    let t = epoch().elapsed().as_secs_f64();
    // One locked write per record so concurrent services don't interleave
    // mid-line.
    let stderr = std::io::stderr();
    let mut out = stderr.lock();
    let _ = NODE_ROLE.with(|r| match r.borrow().as_deref() {
        Some(role) => writeln!(out, "[grouting {t:9.3}s {role} {level}] {args}"),
        None => writeln!(out, "[grouting {t:9.3}s {level}] {args}"),
    });
}

/// Logs at error level.
#[macro_export]
macro_rules! log_error {
    ($($arg:tt)*) => {
        if $crate::logger::enabled($crate::logger::Level::Error) {
            $crate::logger::emit($crate::logger::Level::Error, format_args!($($arg)*));
        }
    };
}

/// Logs at warn level (the default threshold).
#[macro_export]
macro_rules! log_warn {
    ($($arg:tt)*) => {
        if $crate::logger::enabled($crate::logger::Level::Warn) {
            $crate::logger::emit($crate::logger::Level::Warn, format_args!($($arg)*));
        }
    };
}

/// Logs at info level.
#[macro_export]
macro_rules! log_info {
    ($($arg:tt)*) => {
        if $crate::logger::enabled($crate::logger::Level::Info) {
            $crate::logger::emit($crate::logger::Level::Info, format_args!($($arg)*));
        }
    };
}

/// Logs at debug level.
#[macro_export]
macro_rules! log_debug {
    ($($arg:tt)*) => {
        if $crate::logger::enabled($crate::logger::Level::Debug) {
            $crate::logger::emit($crate::logger::Level::Debug, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_from_severe_to_verbose() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn parse_known_and_unknown() {
        assert_eq!(Level::parse("error"), Some(Level::Error));
        assert_eq!(Level::parse("warn"), Some(Level::Warn));
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("loud"), None);
    }

    #[test]
    fn threshold_gates_enabled() {
        // The threshold is process-global; restore the default afterwards
        // so other tests in this binary see the usual `warn`.
        set_level(Level::Error);
        assert!(enabled(Level::Error));
        assert!(!enabled(Level::Warn));
        set_level(Level::Debug);
        assert!(enabled(Level::Debug));
        set_level(Level::Warn);
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
    }

    #[test]
    fn macros_compile_and_respect_threshold() {
        set_level(Level::Warn);
        log_error!("error path {}", 1);
        log_warn!("warn path {}", 2);
        log_info!("info path (suppressed) {}", 3);
        log_debug!("debug path (suppressed) {}", 4);
    }

    #[test]
    fn node_role_is_per_thread() {
        set_node_role("router");
        NODE_ROLE.with(|r| assert_eq!(r.borrow().as_deref(), Some("router")));
        std::thread::spawn(|| {
            // A fresh thread has no role until it declares one.
            NODE_ROLE.with(|r| assert!(r.borrow().is_none()));
            set_node_role("proc-1");
            NODE_ROLE.with(|r| assert_eq!(r.borrow().as_deref(), Some("proc-1")));
        })
        .join()
        .unwrap();
        NODE_ROLE.with(|r| assert_eq!(r.borrow().as_deref(), Some("router")));
    }
}
