//! Monotonic event counters and the cache hit/miss bundle of Eq. 8/9.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// The counter is thread-safe (relaxed atomics) so that the live threaded
/// runtime can share one instance across processor threads; the simulator
/// uses it single-threaded where the atomics cost nothing measurable.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Returns the current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero and returns the previous value.
    pub fn reset(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

impl Clone for Counter {
    fn clone(&self) -> Self {
        Self {
            value: AtomicU64::new(self.get()),
        }
    }
}

/// Cache hit/miss accounting per the paper's Eq. 8 and Eq. 9.
///
/// For a stream of queries `q1..qt`, hits are the total number of nodes whose
/// adjacency entries were found in a processor cache and misses the number
/// that had to be fetched from the storage tier, so
/// `hits + misses = Σ |N_h(q_i)|`.
#[derive(Debug, Default, Clone)]
pub struct CacheCounters {
    /// Node adjacency entries served from a processor cache (Eq. 8).
    pub hits: Counter,
    /// Node adjacency entries fetched from the storage tier (Eq. 9).
    pub misses: Counter,
    /// Entries evicted from processor caches to make room.
    pub evictions: Counter,
}

impl CacheCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total lookups observed (`hits + misses`).
    pub fn lookups(&self) -> u64 {
        self.hits.get() + self.misses.get()
    }

    /// Hit rate in `[0, 1]`; zero when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits.get() as f64 / total as f64
        }
    }

    /// Folds another set of counters into this one.
    pub fn merge(&self, other: &CacheCounters) {
        self.hits.add(other.hits.get());
        self.misses.add(other.misses.get());
        self.evictions.add(other.evictions.get());
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.hits.reset();
        self.misses.reset();
        self.evictions.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_clone_snapshots_value() {
        let c = Counter::new();
        c.add(7);
        let d = c.clone();
        c.add(1);
        assert_eq!(d.get(), 7);
        assert_eq!(c.get(), 8);
    }

    #[test]
    fn cache_counters_hit_rate() {
        let cc = CacheCounters::new();
        assert_eq!(cc.hit_rate(), 0.0);
        cc.hits.add(3);
        cc.misses.add(1);
        assert_eq!(cc.lookups(), 4);
        assert!((cc.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn cache_counters_merge() {
        let a = CacheCounters::new();
        a.hits.add(10);
        a.evictions.add(2);
        let b = CacheCounters::new();
        b.hits.add(5);
        b.misses.add(5);
        a.merge(&b);
        assert_eq!(a.hits.get(), 15);
        assert_eq!(a.misses.get(), 5);
        assert_eq!(a.evictions.get(), 2);
    }

    #[test]
    fn counter_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Counter>();
        assert_send_sync::<CacheCounters>();
    }

    #[test]
    fn threaded_increments() {
        use std::sync::Arc;
        let c = Arc::new(Counter::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.incr();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}
