//! Workload heatmaps: demand vs speculative access tallies per slot.
//!
//! A [`HeatMap`] counts, per *slot* (a storage partition, or a landmark
//! region), how many adjacency accesses the workload demanded and how many
//! were fetched speculatively. The counters are cumulative integers and
//! are counted unconditionally on the hot paths, so they are exactly
//! reproducible run-to-run — the agreement tests pin them byte-identical
//! with observability sampling on or off. [`DecayingHeat`] derives a
//! recency-weighted view from periodic cumulative observations; that view
//! is what a re-placement policy (and the scrape endpoint) should read,
//! while the raw map is what crosses the wire in snapshots.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// One slot's access tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeatCell {
    /// Accesses the query execution itself required (cache-miss fetches
    /// for partitions; dispatched queries for landmark regions).
    pub demand: u64,
    /// Accesses issued ahead of demand by the prefetcher.
    pub speculative: u64,
}

impl HeatCell {
    /// Total accesses attributed to the slot.
    pub fn total(&self) -> u64 {
        self.demand + self.speculative
    }
}

/// Cumulative demand/speculative tallies over a dense slot range.
///
/// Slots grow on first touch, so callers never size the map up front;
/// merging grows to the longer of the two maps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeatMap {
    cells: Vec<HeatCell>,
}

impl HeatMap {
    /// An empty map (no slots observed yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// A map pre-sized to `slots` zeroed cells.
    pub fn with_slots(slots: usize) -> Self {
        Self {
            cells: vec![HeatCell::default(); slots],
        }
    }

    /// Number of slots observed so far.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no slot has been observed.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// All cells, index = slot.
    pub fn cells(&self) -> &[HeatCell] {
        &self.cells
    }

    /// The cell for `slot` (zero if never touched).
    pub fn cell(&self, slot: usize) -> HeatCell {
        self.cells.get(slot).copied().unwrap_or_default()
    }

    fn grow_to(&mut self, slot: usize) -> &mut HeatCell {
        if self.cells.len() <= slot {
            self.cells.resize(slot + 1, HeatCell::default());
        }
        &mut self.cells[slot]
    }

    /// Counts `n` demand accesses against `slot`.
    #[inline]
    pub fn record_demand(&mut self, slot: usize, n: u64) {
        self.grow_to(slot).demand += n;
    }

    /// Counts `n` speculative accesses against `slot`.
    #[inline]
    pub fn record_speculative(&mut self, slot: usize, n: u64) {
        self.grow_to(slot).speculative += n;
    }

    /// Sum of demand tallies across slots.
    pub fn total_demand(&self) -> u64 {
        self.cells.iter().map(|c| c.demand).sum()
    }

    /// Sum of speculative tallies across slots.
    pub fn total_speculative(&self) -> u64 {
        self.cells.iter().map(|c| c.speculative).sum()
    }

    /// Adds another map's tallies into this one (element-wise, growing to
    /// the longer map).
    pub fn merge(&mut self, other: &HeatMap) {
        if self.cells.len() < other.cells.len() {
            self.cells.resize(other.cells.len(), HeatCell::default());
        }
        for (mine, theirs) in self.cells.iter_mut().zip(&other.cells) {
            mine.demand += theirs.demand;
            mine.speculative += theirs.speculative;
        }
    }

    /// Encoded size in bytes (matches what `encode_into` appends).
    pub fn encoded_len(&self) -> usize {
        4 + 16 * self.cells.len()
    }

    /// Appends the little-endian wire layout: u32 slot count, then
    /// `(u64 demand, u64 speculative)` per slot.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.cells.len() as u32);
        for c in &self.cells {
            buf.put_u64_le(c.demand);
            buf.put_u64_le(c.speculative);
        }
    }

    /// Decodes one map from the front of `data`, consuming exactly its own
    /// bytes (the same prefix contract as `RunSnapshot::decode_prefix`).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation on truncated input.
    pub fn decode_prefix(data: &mut Bytes) -> Result<Self, String> {
        if data.remaining() < 4 {
            return Err(format!(
                "heat map count needs 4 bytes, have {}",
                data.remaining()
            ));
        }
        let slots = data.get_u32_le() as usize;
        if data.remaining() < 16 * slots {
            return Err(format!(
                "heat map body needs {} bytes for {slots} slots, have {}",
                16 * slots,
                data.remaining()
            ));
        }
        let cells = (0..slots)
            .map(|_| HeatCell {
                demand: data.get_u64_le(),
                speculative: data.get_u64_le(),
            })
            .collect();
        Ok(Self { cells })
    }
}

/// A recency-weighted view of a cumulative [`HeatMap`].
///
/// Feed it the current cumulative map at each sampling tick; it decays the
/// running value by `exp(-dt / tau)` and adds the interval's delta, so a
/// slot that stops being accessed cools toward zero with time constant
/// `tau` while the underlying integer counters stay monotone and
/// deterministic.
#[derive(Debug, Clone)]
pub struct DecayingHeat {
    tau_ns: f64,
    last_ns: Option<u64>,
    last: HeatMap,
    demand: Vec<f64>,
    speculative: Vec<f64>,
}

impl DecayingHeat {
    /// A view with time constant `tau_ns` (must be non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `tau_ns` is zero.
    pub fn new(tau_ns: u64) -> Self {
        assert!(tau_ns > 0, "zero decay time constant");
        Self {
            tau_ns: tau_ns as f64,
            last_ns: None,
            last: HeatMap::new(),
            demand: Vec::new(),
            speculative: Vec::new(),
        }
    }

    /// Observes the cumulative map as of `now_ns`, decaying the running
    /// view and folding in the delta since the previous observation.
    pub fn observe(&mut self, now_ns: u64, cumulative: &HeatMap) {
        let factor = match self.last_ns {
            Some(prev) => (-(now_ns.saturating_sub(prev) as f64) / self.tau_ns).exp(),
            None => 0.0,
        };
        if self.demand.len() < cumulative.len() {
            self.demand.resize(cumulative.len(), 0.0);
            self.speculative.resize(cumulative.len(), 0.0);
        }
        for (slot, cell) in cumulative.cells().iter().enumerate() {
            let prev = self.last.cell(slot);
            self.demand[slot] =
                self.demand[slot] * factor + cell.demand.saturating_sub(prev.demand) as f64;
            self.speculative[slot] = self.speculative[slot] * factor
                + cell.speculative.saturating_sub(prev.speculative) as f64;
        }
        // Slots beyond the new map's length (shrinking never happens with
        // cumulative inputs, but stay safe): just decay them.
        for slot in cumulative.len()..self.demand.len() {
            self.demand[slot] *= factor;
            self.speculative[slot] *= factor;
        }
        self.last = cumulative.clone();
        self.last_ns = Some(now_ns);
    }

    /// Decayed demand per slot.
    pub fn demand(&self) -> &[f64] {
        &self.demand
    }

    /// Decayed speculative accesses per slot.
    pub fn speculative(&self) -> &[f64] {
        &self.speculative
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_grows_and_counts() {
        let mut h = HeatMap::new();
        h.record_demand(2, 3);
        h.record_speculative(0, 5);
        assert_eq!(h.len(), 3);
        assert_eq!(
            h.cell(2),
            HeatCell {
                demand: 3,
                speculative: 0
            }
        );
        assert_eq!(
            h.cell(0),
            HeatCell {
                demand: 0,
                speculative: 5
            }
        );
        assert_eq!(h.cell(7), HeatCell::default());
        assert_eq!(h.total_demand(), 3);
        assert_eq!(h.total_speculative(), 5);
        assert_eq!(h.cell(2).total(), 3);
    }

    #[test]
    fn merge_grows_to_longer() {
        let mut a = HeatMap::new();
        a.record_demand(0, 1);
        let mut b = HeatMap::new();
        b.record_demand(0, 2);
        b.record_speculative(3, 4);
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.cell(0).demand, 3);
        assert_eq!(a.cell(3).speculative, 4);
    }

    #[test]
    fn codec_round_trips_and_rejects_truncation() {
        let mut h = HeatMap::with_slots(2);
        h.record_demand(1, 9);
        h.record_speculative(0, 4);
        let mut buf = BytesMut::new();
        h.encode_into(&mut buf);
        assert_eq!(buf.len(), h.encoded_len());
        let bytes = buf.freeze();
        let mut data = bytes.clone();
        assert_eq!(HeatMap::decode_prefix(&mut data).unwrap(), h);
        assert!(!data.has_remaining());
        for cut in 0..bytes.len() {
            let mut trunc = bytes.slice(0..cut);
            assert!(HeatMap::decode_prefix(&mut trunc).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn decode_prefix_leaves_suffix() {
        let mut h = HeatMap::new();
        h.record_demand(0, 1);
        let mut buf = BytesMut::new();
        h.encode_into(&mut buf);
        buf.put_u64_le(0xDEAD);
        let mut data = buf.freeze();
        assert_eq!(HeatMap::decode_prefix(&mut data).unwrap(), h);
        assert_eq!(data.remaining(), 8);
    }

    #[test]
    fn decay_cools_idle_slots() {
        let mut view = DecayingHeat::new(1_000);
        let mut cum = HeatMap::new();
        cum.record_demand(0, 10);
        view.observe(0, &cum);
        assert_eq!(view.demand()[0], 10.0);
        // One tau later with no new accesses: decayed by e^-1.
        view.observe(1_000, &cum);
        let cooled = view.demand()[0];
        assert!((cooled - 10.0 * (-1.0f64).exp()).abs() < 1e-9, "{cooled}");
        // New accesses land at full weight on top of the decayed residue.
        cum.record_demand(0, 5);
        view.observe(2_000, &cum);
        let expected = cooled * (-1.0f64).exp() + 5.0;
        assert!((view.demand()[0] - expected).abs() < 1e-9);
    }

    #[test]
    fn decay_tracks_new_slots() {
        let mut view = DecayingHeat::new(1_000);
        let mut cum = HeatMap::new();
        cum.record_speculative(0, 2);
        view.observe(0, &cum);
        cum.record_speculative(4, 7);
        view.observe(500, &cum);
        assert_eq!(view.speculative().len(), 5);
        assert_eq!(view.speculative()[4], 7.0);
    }

    proptest::proptest! {
        #[test]
        fn prop_heat_round_trip(
            cells in proptest::collection::vec((0u64..1 << 50, 0u64..1 << 50), 0..24),
        ) {
            let mut h = HeatMap::new();
            for (slot, (d, s)) in cells.iter().enumerate() {
                h.record_demand(slot, *d);
                h.record_speculative(slot, *s);
            }
            let mut buf = BytesMut::new();
            h.encode_into(&mut buf);
            proptest::prop_assert_eq!(buf.len(), h.encoded_len());
            let mut data = buf.freeze();
            proptest::prop_assert_eq!(HeatMap::decode_prefix(&mut data).unwrap(), h);
            proptest::prop_assert!(!data.has_remaining());
        }
    }
}
