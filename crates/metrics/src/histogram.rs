//! Log-linear bucketed histogram for latency distributions.
//!
//! The paper reports *average* response times; we additionally keep a full
//! distribution so the harness can report tail percentiles. The layout is the
//! classic HdrHistogram-style log-linear scheme: values are grouped into
//! power-of-two magnitude ranges, each split into `2^precision` linear
//! sub-buckets, giving a bounded relative error of `2^-precision` with O(1)
//! record cost and a few KiB of memory.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use grouting_metrics_sealed::Sealed;

mod grouting_metrics_sealed {
    /// Seals internal helper traits against downstream implementations.
    pub trait Sealed {}
}

/// Marker for types recordable into a [`Histogram`]; sealed, only `u64`.
pub trait Recordable: Sealed + Copy {
    /// Converts the value into the histogram's native `u64` domain.
    fn into_u64(self) -> u64;
}

impl Sealed for u64 {}
impl Recordable for u64 {
    fn into_u64(self) -> u64 {
        self
    }
}

const PRECISION_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << PRECISION_BITS;
const MAGNITUDES: usize = 64 - PRECISION_BITS as usize;

/// A log-linear histogram over `u64` values (typically nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; MAGNITUDES * SUB_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        // Values below SUB_BUCKETS map 1:1 into the first magnitude's linear
        // buckets; larger values select a magnitude by leading-zero count and
        // a sub-bucket from the bits just under the leading one.
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let magnitude = 63 - value.leading_zeros();
        let shift = magnitude - PRECISION_BITS;
        let sub = ((value >> shift) as usize) & (SUB_BUCKETS - 1);
        let mag_index = (magnitude - PRECISION_BITS + 1) as usize;
        mag_index * SUB_BUCKETS + sub
    }

    fn bucket_low(index: usize) -> u64 {
        let mag_index = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        if mag_index == 0 {
            return sub;
        }
        let magnitude = mag_index as u32 + PRECISION_BITS - 1;
        let base = 1u64 << magnitude;
        let shift = magnitude - PRECISION_BITS;
        base + (sub << shift)
    }

    /// Records one observation.
    #[inline]
    pub fn record<V: Recordable>(&mut self, value: V) {
        let v = value.into_u64();
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the recorded values, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Smallest recorded value, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Value at quantile `q` in `[0, 1]`, approximated by bucket lower bound.
    ///
    /// Returns `None` on an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Clamp to the observed extremes so p0/p100 are exact.
                return Some(Self::bucket_low(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Convenience accessor for the median.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// Convenience accessor for the 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Convenience accessor for the 99.9th percentile.
    pub fn p999(&self) -> Option<u64> {
        self.quantile(0.999)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clears all recorded data.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Encoded size in bytes (matches what [`Histogram::encode_into`]
    /// appends exactly). Sparse: only non-empty buckets travel.
    pub fn encoded_len(&self) -> usize {
        let nonzero = self.buckets.iter().filter(|&&c| c != 0).count();
        8 + 16 + 8 + 8 + 4 + nonzero * (4 + 8)
    }

    /// Appends the little-endian sparse wire layout: the summary fields,
    /// then one `(bucket index, count)` pair per non-empty bucket in index
    /// order. Two histograms with the same recorded multiset encode
    /// identically.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.count);
        buf.put_u128_le(self.sum);
        buf.put_u64_le(self.min);
        buf.put_u64_le(self.max);
        let nonzero = self.buckets.iter().filter(|&&c| c != 0).count();
        buf.put_u32_le(nonzero as u32);
        for (i, &c) in self.buckets.iter().enumerate() {
            if c != 0 {
                buf.put_u32_le(i as u32);
                buf.put_u64_le(c);
            }
        }
    }

    /// Encodes to a standalone buffer (see [`Histogram::encode_into`]).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Decodes one histogram from the front of `data`, consuming exactly
    /// its own bytes and leaving any remainder untouched.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation on truncated input,
    /// out-of-range or non-increasing bucket indexes, or a bucket/count
    /// mismatch.
    pub fn decode_prefix(data: &mut Bytes) -> Result<Self, String> {
        if data.remaining() < 8 + 16 + 8 + 8 + 4 {
            return Err(format!(
                "histogram header needs 44 bytes, have {}",
                data.remaining()
            ));
        }
        let count = data.get_u64_le();
        let sum = data.get_u128_le();
        let min = data.get_u64_le();
        let max = data.get_u64_le();
        let nonzero = data.get_u32_le() as usize;
        if data.remaining() < nonzero * 12 {
            return Err(format!(
                "histogram body needs {} bytes for {nonzero} buckets, have {}",
                nonzero * 12,
                data.remaining()
            ));
        }
        let mut h = Self::new();
        let mut total = 0u64;
        let mut prev: Option<usize> = None;
        for _ in 0..nonzero {
            let idx = data.get_u32_le() as usize;
            let c = data.get_u64_le();
            if idx >= h.buckets.len() {
                return Err(format!("histogram bucket index {idx} out of range"));
            }
            if prev.is_some_and(|p| idx <= p) {
                return Err("histogram bucket indexes must increase".to_string());
            }
            if c == 0 {
                return Err("histogram sparse bucket with zero count".to_string());
            }
            prev = Some(idx);
            h.buckets[idx] = c;
            total += c;
        }
        if total != count {
            return Err(format!(
                "histogram bucket total {total} disagrees with count {count}"
            ));
        }
        h.count = count;
        h.sum = sum;
        h.min = min;
        h.max = max;
        Ok(h)
    }

    /// Decodes from the wire layout, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// See [`Histogram::decode_prefix`]; additionally errors when bytes
    /// remain after the histogram.
    pub fn decode(mut data: Bytes) -> Result<Self, String> {
        let h = Self::decode_prefix(&mut data)?;
        if data.has_remaining() {
            return Err(format!(
                "{} trailing bytes after histogram",
                data.remaining()
            ));
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn exact_small_values() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(31));
        // Small values land in 1:1 buckets, so quantiles are exact.
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(31));
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(100u64);
        h.record(200u64);
        h.record(300u64);
        assert_eq!(h.mean(), Some(200.0));
    }

    #[test]
    fn quantile_relative_error_bounded() {
        let mut h = Histogram::new();
        for v in [1_000u64, 10_000, 100_000, 1_000_000, 10_000_000] {
            for _ in 0..100 {
                h.record(v);
            }
        }
        let p50 = h.p50().unwrap() as f64;
        // p50 falls on the middle value (100_000); bucket error < 2^-5.
        assert!((p50 - 100_000.0).abs() / 100_000.0 < 0.04, "p50={p50}");
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10u64);
        b.record(20u64);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(20));
        assert_eq!(a.mean(), Some(15.0));
    }

    #[test]
    fn reset_clears() {
        let mut h = Histogram::new();
        h.record(42u64);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_rejects_out_of_range() {
        let h = Histogram::new();
        let _ = h.quantile(1.5);
    }

    #[test]
    fn p999_sits_at_the_tail() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(1_000u64);
        }
        h.record(1_000_000u64);
        // With 100 observations, p999 rounds up to the 100th — the single
        // outlier — while p99 still sits on the bulk.
        let p999 = h.p999().unwrap();
        assert!(p999 > 900_000, "p999={p999}");
        assert!(h.p99().unwrap() < 1_100, "p99={:?}", h.p99());
        assert_eq!(Histogram::new().p999(), None);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 31, 32, 1_000, 65_535, 1 << 30, u64::MAX / 3] {
            h.record(v);
            h.record(v);
        }
        let bytes = h.encode();
        assert_eq!(bytes.len(), h.encoded_len());
        assert_eq!(Histogram::decode(bytes).unwrap(), h);
    }

    #[test]
    fn empty_histogram_round_trips() {
        let h = Histogram::new();
        let decoded = Histogram::decode(h.encode()).unwrap();
        assert_eq!(decoded, h);
        assert_eq!(decoded.count(), 0);
        assert_eq!(decoded.quantile(0.5), None);
    }

    #[test]
    fn decode_rejects_malformed_input() {
        let mut h = Histogram::new();
        h.record(42u64);
        let bytes = h.encode();
        // Truncation at every cut point.
        for cut in 0..bytes.len() {
            assert!(Histogram::decode(bytes.slice(0..cut)).is_err(), "cut {cut}");
        }
        // Trailing bytes.
        let mut raw = bytes.to_vec();
        raw.push(0);
        assert!(Histogram::decode(Bytes::from(raw)).is_err());
        // A bucket total disagreeing with the count field.
        let mut raw = bytes.to_vec();
        raw[0] = 2; // count says 2, the single bucket still says 1
        assert!(Histogram::decode(Bytes::from(raw)).is_err());
    }

    #[test]
    fn decode_prefix_leaves_the_remainder() {
        let mut h = Histogram::new();
        h.record(7u64);
        let mut raw = h.encode().to_vec();
        raw.extend_from_slice(b"tail");
        let mut data = Bytes::from(raw);
        assert_eq!(Histogram::decode_prefix(&mut data).unwrap(), h);
        assert_eq!(&data[..], b"tail");
    }

    #[test]
    fn merged_histogram_encodes_like_a_combined_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [5u64, 500, 50_000] {
            a.record(v);
            both.record(v);
        }
        for v in [9u64, 900, 90_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.encode(), both.encode());
        assert_eq!(a.p999(), both.p999());
    }

    #[test]
    fn bucket_index_monotone_on_boundaries() {
        // Bucket lower bounds must be non-decreasing with index so quantile
        // scans return non-decreasing values.
        let mut prev = 0;
        for i in 0..(8 * SUB_BUCKETS) {
            let low = Histogram::bucket_low(i);
            assert!(low >= prev, "bucket {i} low {low} < prev {prev}");
            prev = low;
        }
    }

    #[test]
    fn bucket_round_trip_error_bounded() {
        for v in [1u64, 31, 32, 33, 100, 1_000, 65_535, 1 << 30, u64::MAX / 2] {
            let idx = Histogram::bucket_index(v);
            let low = Histogram::bucket_low(idx);
            assert!(low <= v, "low {low} > v {v}");
            let err = (v - low) as f64 / v.max(1) as f64;
            assert!(err <= 1.0 / 32.0 + 1e-9, "v={v} low={low} err={err}");
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_bucket_low_le_value(v in 0u64..u64::MAX / 2) {
            let idx = Histogram::bucket_index(v);
            let low = Histogram::bucket_low(idx);
            proptest::prop_assert!(low <= v);
            // Relative error bound 2^-PRECISION_BITS.
            if v >= SUB_BUCKETS as u64 {
                let err = (v - low) as f64 / v as f64;
                proptest::prop_assert!(err <= 1.0 / 32.0 + 1e-9);
            } else {
                proptest::prop_assert_eq!(low, v);
            }
        }

        #[test]
        fn prop_encode_round_trips(values in proptest::collection::vec(0u64..u64::MAX / 2, 0..200)) {
            let mut h = Histogram::new();
            for v in &values {
                h.record(*v);
            }
            let bytes = h.encode();
            proptest::prop_assert_eq!(bytes.len(), h.encoded_len());
            proptest::prop_assert_eq!(Histogram::decode(bytes).unwrap(), h);
        }

        #[test]
        fn prop_quantiles_monotone(values in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut h = Histogram::new();
            for v in &values {
                h.record(*v);
            }
            let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
            let mut prev = 0u64;
            for q in qs {
                let v = h.quantile(q).unwrap();
                proptest::prop_assert!(v >= prev, "quantile({}) = {} < {}", q, v, prev);
                prev = v;
            }
        }
    }
}
