//! Log-linear bucketed histogram for latency distributions.
//!
//! The paper reports *average* response times; we additionally keep a full
//! distribution so the harness can report tail percentiles. The layout is the
//! classic HdrHistogram-style log-linear scheme: values are grouped into
//! power-of-two magnitude ranges, each split into `2^precision` linear
//! sub-buckets, giving a bounded relative error of `2^-precision` with O(1)
//! record cost and a few KiB of memory.

use grouting_metrics_sealed::Sealed;

mod grouting_metrics_sealed {
    /// Seals internal helper traits against downstream implementations.
    pub trait Sealed {}
}

/// Marker for types recordable into a [`Histogram`]; sealed, only `u64`.
pub trait Recordable: Sealed + Copy {
    /// Converts the value into the histogram's native `u64` domain.
    fn into_u64(self) -> u64;
}

impl Sealed for u64 {}
impl Recordable for u64 {
    fn into_u64(self) -> u64 {
        self
    }
}

const PRECISION_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << PRECISION_BITS;
const MAGNITUDES: usize = 64 - PRECISION_BITS as usize;

/// A log-linear histogram over `u64` values (typically nanoseconds).
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; MAGNITUDES * SUB_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        // Values below SUB_BUCKETS map 1:1 into the first magnitude's linear
        // buckets; larger values select a magnitude by leading-zero count and
        // a sub-bucket from the bits just under the leading one.
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let magnitude = 63 - value.leading_zeros();
        let shift = magnitude - PRECISION_BITS;
        let sub = ((value >> shift) as usize) & (SUB_BUCKETS - 1);
        let mag_index = (magnitude - PRECISION_BITS + 1) as usize;
        mag_index * SUB_BUCKETS + sub
    }

    fn bucket_low(index: usize) -> u64 {
        let mag_index = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        if mag_index == 0 {
            return sub;
        }
        let magnitude = mag_index as u32 + PRECISION_BITS - 1;
        let base = 1u64 << magnitude;
        let shift = magnitude - PRECISION_BITS;
        base + (sub << shift)
    }

    /// Records one observation.
    #[inline]
    pub fn record<V: Recordable>(&mut self, value: V) {
        let v = value.into_u64();
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the recorded values, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Smallest recorded value, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Value at quantile `q` in `[0, 1]`, approximated by bucket lower bound.
    ///
    /// Returns `None` on an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Clamp to the observed extremes so p0/p100 are exact.
                return Some(Self::bucket_low(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Convenience accessor for the median.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// Convenience accessor for the 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clears all recorded data.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn exact_small_values() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(31));
        // Small values land in 1:1 buckets, so quantiles are exact.
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(31));
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(100u64);
        h.record(200u64);
        h.record(300u64);
        assert_eq!(h.mean(), Some(200.0));
    }

    #[test]
    fn quantile_relative_error_bounded() {
        let mut h = Histogram::new();
        for v in [1_000u64, 10_000, 100_000, 1_000_000, 10_000_000] {
            for _ in 0..100 {
                h.record(v);
            }
        }
        let p50 = h.p50().unwrap() as f64;
        // p50 falls on the middle value (100_000); bucket error < 2^-5.
        assert!((p50 - 100_000.0).abs() / 100_000.0 < 0.04, "p50={p50}");
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10u64);
        b.record(20u64);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(20));
        assert_eq!(a.mean(), Some(15.0));
    }

    #[test]
    fn reset_clears() {
        let mut h = Histogram::new();
        h.record(42u64);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_rejects_out_of_range() {
        let h = Histogram::new();
        let _ = h.quantile(1.5);
    }

    #[test]
    fn bucket_index_monotone_on_boundaries() {
        // Bucket lower bounds must be non-decreasing with index so quantile
        // scans return non-decreasing values.
        let mut prev = 0;
        for i in 0..(8 * SUB_BUCKETS) {
            let low = Histogram::bucket_low(i);
            assert!(low >= prev, "bucket {i} low {low} < prev {prev}");
            prev = low;
        }
    }

    #[test]
    fn bucket_round_trip_error_bounded() {
        for v in [1u64, 31, 32, 33, 100, 1_000, 65_535, 1 << 30, u64::MAX / 2] {
            let idx = Histogram::bucket_index(v);
            let low = Histogram::bucket_low(idx);
            assert!(low <= v, "low {low} > v {v}");
            let err = (v - low) as f64 / v.max(1) as f64;
            assert!(err <= 1.0 / 32.0 + 1e-9, "v={v} low={low} err={err}");
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_bucket_low_le_value(v in 0u64..u64::MAX / 2) {
            let idx = Histogram::bucket_index(v);
            let low = Histogram::bucket_low(idx);
            proptest::prop_assert!(low <= v);
            // Relative error bound 2^-PRECISION_BITS.
            if v >= SUB_BUCKETS as u64 {
                let err = (v - low) as f64 / v as f64;
                proptest::prop_assert!(err <= 1.0 / 32.0 + 1e-9);
            } else {
                proptest::prop_assert_eq!(low, v);
            }
        }

        #[test]
        fn prop_quantiles_monotone(values in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut h = Histogram::new();
            for v in &values {
                h.record(*v);
            }
            let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
            let mut prev = 0u64;
            for q in qs {
                let v = h.quantile(q).unwrap();
                proptest::prop_assert!(v >= prev, "quantile({}) = {} < {}", q, v, prev);
                prev = v;
            }
        }
    }
}
