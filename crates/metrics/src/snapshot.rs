//! Serializable end-of-run measurement snapshots.
//!
//! When the cluster runs over a real wire (`grouting-wire`), the router is
//! the only node that sees every completion, so the client learns the
//! run's totals from a single snapshot frame the router emits at shutdown.
//! The snapshot carries exactly the counters every runtime already
//! accumulates — queries, hits, misses, evictions, steals, failover
//! recoveries, and the per-processor service counts — in a compact
//! little-endian encoding.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::heat::HeatMap;

/// Recovery work one fetch path performed: how often a storage connection
/// was re-established, how often a fetch had to move to another replica in
/// its chain, and how many in-flight batches were resubmitted after a
/// connection died. Strictly bookkeeping — the demand counters in
/// [`RunSnapshot`] are unchanged by any of these events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailoverStats {
    /// Storage connections re-established (any redial that replaced a live
    /// or dead connection, whether it landed on the primary or a replica).
    pub redials: u64,
    /// Redials that landed on a non-primary replica of the chain — the
    /// primary endpoint was unreachable and the fetch moved down the chain.
    pub replica_failovers: u64,
    /// In-flight batch requests resubmitted on a fresh connection after
    /// their original connection died mid-round-trip.
    pub batches_resubmitted: u64,
}

impl FailoverStats {
    /// Adds another tally into this one.
    pub fn merge(&mut self, other: &FailoverStats) {
        self.redials += other.redials;
        self.replica_failovers += other.replica_failovers;
        self.batches_resubmitted += other.batches_resubmitted;
    }
}

/// Totals of one complete run, in a wire-encodable form.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunSnapshot {
    /// Queries completed.
    pub queries: u64,
    /// Cache hits across processors (Eq. 8 numerator).
    pub cache_hits: u64,
    /// Cache misses across processors (Eq. 9 numerator).
    pub cache_misses: u64,
    /// Cache evictions observed.
    pub evictions: u64,
    /// Queries served by a non-preferred processor.
    pub stolen: u64,
    /// Speculative nodes appended to frontier batches (prefetch traffic —
    /// accounted apart from the Eq. 8/9 demand counters above).
    pub prefetch_issued: u64,
    /// Demand accesses served from the speculative staging buffer
    /// ("hit because prefetched": still a demand miss above, but one whose
    /// round trip was already paid).
    pub prefetch_hits: u64,
    /// Speculatively fetched bytes dropped without ever being demanded.
    pub prefetch_wasted_bytes: u64,
    /// Storage connections re-established across all processors.
    pub redials: u64,
    /// Storage fetches that failed over to a non-primary replica endpoint.
    pub replica_failovers: u64,
    /// In-flight fetch batches resubmitted after a connection died.
    pub batches_resubmitted: u64,
    /// Outstanding dispatch windows the router resubmitted because their
    /// processor died mid-run (one count per death with work in flight).
    pub windows_resubmitted: u64,
    /// Queries served per processor (index = processor id).
    pub per_processor: Vec<u64>,
    /// Demand vs speculative adjacency fetches per storage partition
    /// (slot = storage server id) — the workload heatmap a re-placement
    /// policy reads.
    pub partition_heat: HeatMap,
    /// Demand (dispatches) vs speculative fetches per landmark region
    /// (slot = landmark index); empty when no landmark asset is deployed.
    pub region_heat: HeatMap,
}

impl RunSnapshot {
    /// Cache hit rate in `[0, 1]` (Eq. 8).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of issued speculations that were demanded, in `[0, 1]`.
    pub fn prefetch_hit_rate(&self) -> f64 {
        if self.prefetch_issued == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / self.prefetch_issued as f64
        }
    }

    /// Adds another snapshot's totals into this one (counters sum;
    /// per-processor counts sum element-wise, growing to the longer list).
    /// This is how partial snapshots — e.g. one per router epoch, or one
    /// per deployment in a sweep — combine into a whole.
    pub fn merge(&mut self, other: &RunSnapshot) {
        self.queries += other.queries;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.evictions += other.evictions;
        self.stolen += other.stolen;
        self.prefetch_issued += other.prefetch_issued;
        self.prefetch_hits += other.prefetch_hits;
        self.prefetch_wasted_bytes += other.prefetch_wasted_bytes;
        self.redials += other.redials;
        self.replica_failovers += other.replica_failovers;
        self.batches_resubmitted += other.batches_resubmitted;
        self.windows_resubmitted += other.windows_resubmitted;
        if self.per_processor.len() < other.per_processor.len() {
            self.per_processor.resize(other.per_processor.len(), 0);
        }
        for (mine, theirs) in self.per_processor.iter_mut().zip(&other.per_processor) {
            *mine += theirs;
        }
        self.partition_heat.merge(&other.partition_heat);
        self.region_heat.merge(&other.region_heat);
    }

    /// Encoded size in bytes (matches `encode().len()` exactly).
    pub fn encoded_len(&self) -> usize {
        8 * 12
            + 4
            + 8 * self.per_processor.len()
            + self.partition_heat.encoded_len()
            + self.region_heat.encoded_len()
    }

    /// Encodes to the little-endian wire layout.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u64_le(self.queries);
        buf.put_u64_le(self.cache_hits);
        buf.put_u64_le(self.cache_misses);
        buf.put_u64_le(self.evictions);
        buf.put_u64_le(self.stolen);
        buf.put_u64_le(self.prefetch_issued);
        buf.put_u64_le(self.prefetch_hits);
        buf.put_u64_le(self.prefetch_wasted_bytes);
        buf.put_u64_le(self.redials);
        buf.put_u64_le(self.replica_failovers);
        buf.put_u64_le(self.batches_resubmitted);
        buf.put_u64_le(self.windows_resubmitted);
        buf.put_u32_le(self.per_processor.len() as u32);
        for &c in &self.per_processor {
            buf.put_u64_le(c);
        }
        self.partition_heat.encode_into(&mut buf);
        self.region_heat.encode_into(&mut buf);
        buf.freeze()
    }

    /// Decodes from the wire layout, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation on truncated or oversized
    /// input.
    pub fn decode(mut data: Bytes) -> Result<Self, String> {
        let snapshot = Self::decode_prefix(&mut data)?;
        if data.has_remaining() {
            return Err(format!(
                "{} trailing bytes after snapshot",
                data.remaining()
            ));
        }
        Ok(snapshot)
    }

    /// Decodes one snapshot from the front of `data`, consuming exactly
    /// its own bytes and leaving any remainder untouched — the hook frames
    /// use to carry optional sections (e.g. a trace snapshot) after it.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation on truncated input.
    pub fn decode_prefix(data: &mut Bytes) -> Result<Self, String> {
        if data.remaining() < 8 * 12 + 4 {
            return Err(format!(
                "snapshot header needs 100 bytes, have {}",
                data.remaining()
            ));
        }
        let queries = data.get_u64_le();
        let cache_hits = data.get_u64_le();
        let cache_misses = data.get_u64_le();
        let evictions = data.get_u64_le();
        let stolen = data.get_u64_le();
        let prefetch_issued = data.get_u64_le();
        let prefetch_hits = data.get_u64_le();
        let prefetch_wasted_bytes = data.get_u64_le();
        let redials = data.get_u64_le();
        let replica_failovers = data.get_u64_le();
        let batches_resubmitted = data.get_u64_le();
        let windows_resubmitted = data.get_u64_le();
        let processors = data.get_u32_le() as usize;
        if data.remaining() < 8 * processors {
            return Err(format!(
                "snapshot body needs {} bytes for {processors} processors, have {}",
                8 * processors,
                data.remaining()
            ));
        }
        let per_processor = (0..processors).map(|_| data.get_u64_le()).collect();
        let partition_heat = HeatMap::decode_prefix(data)?;
        let region_heat = HeatMap::decode_prefix(data)?;
        Ok(Self {
            queries,
            cache_hits,
            cache_misses,
            evictions,
            stolen,
            prefetch_issued,
            prefetch_hits,
            prefetch_wasted_bytes,
            redials,
            replica_failovers,
            batches_resubmitted,
            windows_resubmitted,
            per_processor,
            partition_heat,
            region_heat,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunSnapshot {
        let mut partition_heat = HeatMap::new();
        partition_heat.record_demand(0, 120);
        partition_heat.record_demand(1, 80);
        partition_heat.record_speculative(1, 30);
        let mut region_heat = HeatMap::new();
        region_heat.record_demand(2, 40);
        RunSnapshot {
            queries: 1000,
            cache_hits: 800,
            cache_misses: 200,
            evictions: 13,
            stolen: 4,
            prefetch_issued: 64,
            prefetch_hits: 48,
            prefetch_wasted_bytes: 4096,
            redials: 3,
            replica_failovers: 2,
            batches_resubmitted: 5,
            windows_resubmitted: 1,
            per_processor: vec![250, 251, 249, 250],
            partition_heat,
            region_heat,
        }
    }

    #[test]
    fn round_trip() {
        let s = sample();
        let bytes = s.encode();
        assert_eq!(bytes.len(), s.encoded_len());
        assert_eq!(RunSnapshot::decode(bytes).unwrap(), s);
    }

    #[test]
    fn hit_rate_math() {
        assert!((sample().hit_rate() - 0.8).abs() < 1e-12);
        assert_eq!(RunSnapshot::default().hit_rate(), 0.0);
        assert!((sample().prefetch_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(RunSnapshot::default().prefetch_hit_rate(), 0.0);
    }

    #[test]
    fn merge_sums_counters_and_per_processor() {
        let mut a = sample();
        let b = RunSnapshot {
            queries: 10,
            cache_hits: 5,
            cache_misses: 5,
            evictions: 1,
            stolen: 2,
            prefetch_issued: 6,
            prefetch_hits: 2,
            prefetch_wasted_bytes: 100,
            redials: 7,
            replica_failovers: 1,
            batches_resubmitted: 2,
            windows_resubmitted: 3,
            per_processor: vec![1, 2, 3, 4, 5],
            partition_heat: {
                let mut h = HeatMap::new();
                h.record_demand(1, 20);
                h.record_speculative(2, 6);
                h
            },
            region_heat: HeatMap::new(),
        };
        a.merge(&b);
        assert_eq!(a.queries, 1010);
        assert_eq!(a.cache_hits, 805);
        assert_eq!(a.prefetch_issued, 70);
        assert_eq!(a.prefetch_hits, 50);
        assert_eq!(a.prefetch_wasted_bytes, 4196);
        assert_eq!(a.redials, 10);
        assert_eq!(a.replica_failovers, 3);
        assert_eq!(a.batches_resubmitted, 7);
        assert_eq!(a.windows_resubmitted, 4);
        // Element-wise, grown to the longer list.
        assert_eq!(a.per_processor, vec![251, 253, 252, 254, 5]);
        // Heat maps merge element-wise too, growing to the longer map.
        assert_eq!(a.partition_heat.cell(1).demand, 100);
        assert_eq!(a.partition_heat.cell(2).speculative, 6);
        assert_eq!(a.region_heat.cell(2).demand, 40);
    }

    #[test]
    fn failover_stats_merge_sums() {
        let mut a = FailoverStats {
            redials: 1,
            replica_failovers: 2,
            batches_resubmitted: 3,
        };
        a.merge(&FailoverStats {
            redials: 10,
            replica_failovers: 20,
            batches_resubmitted: 30,
        });
        assert_eq!(
            a,
            FailoverStats {
                redials: 11,
                replica_failovers: 22,
                batches_resubmitted: 33,
            }
        );
    }

    #[test]
    fn decode_rejects_truncation_and_trailing() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                RunSnapshot::decode(bytes.slice(0..cut)).is_err(),
                "cut {cut}"
            );
        }
        let mut raw = bytes.to_vec();
        raw.push(0);
        assert!(RunSnapshot::decode(Bytes::from(raw)).is_err());
    }

    proptest::proptest! {
        #[test]
        fn prop_round_trip(
            queries in 0u64..u64::MAX / 2,
            hits in 0u64..1 << 40,
            misses in 0u64..1 << 40,
            evictions in 0u64..1 << 30,
            stolen in 0u64..1 << 30,
            pf_issued in 0u64..1 << 40,
            pf_hits in 0u64..1 << 40,
            pf_wasted in 0u64..1 << 40,
            redials in 0u64..1 << 30,
            failovers in 0u64..1 << 30,
            resubmitted in 0u64..1 << 30,
            windows in 0u64..1 << 30,
            per in proptest::collection::vec(0u64..1 << 50, 0..12),
            part_heat in proptest::collection::vec((0u64..1 << 50, 0u64..1 << 50), 0..8),
            reg_heat in proptest::collection::vec((0u64..1 << 50, 0u64..1 << 50), 0..8),
        ) {
            let mut partition_heat = HeatMap::new();
            for (slot, (d, sp)) in part_heat.iter().enumerate() {
                partition_heat.record_demand(slot, *d);
                partition_heat.record_speculative(slot, *sp);
            }
            let mut region_heat = HeatMap::new();
            for (slot, (d, sp)) in reg_heat.iter().enumerate() {
                region_heat.record_demand(slot, *d);
                region_heat.record_speculative(slot, *sp);
            }
            let s = RunSnapshot {
                queries,
                cache_hits: hits,
                cache_misses: misses,
                evictions,
                stolen,
                prefetch_issued: pf_issued,
                prefetch_hits: pf_hits,
                prefetch_wasted_bytes: pf_wasted,
                redials,
                replica_failovers: failovers,
                batches_resubmitted: resubmitted,
                windows_resubmitted: windows,
                per_processor: per,
                partition_heat,
                region_heat,
            };
            let bytes = s.encode();
            proptest::prop_assert_eq!(bytes.len(), s.encoded_len());
            proptest::prop_assert_eq!(RunSnapshot::decode(bytes).unwrap(), s);
        }
    }
}
