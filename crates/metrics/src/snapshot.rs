//! Serializable end-of-run measurement snapshots.
//!
//! When the cluster runs over a real wire (`grouting-wire`), the router is
//! the only node that sees every completion, so the client learns the
//! run's totals from a single snapshot frame the router emits at shutdown.
//! The snapshot carries exactly the counters every runtime already
//! accumulates — queries, hits, misses, evictions, steals, and the
//! per-processor service counts — in a compact little-endian encoding.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Totals of one complete run, in a wire-encodable form.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunSnapshot {
    /// Queries completed.
    pub queries: u64,
    /// Cache hits across processors (Eq. 8 numerator).
    pub cache_hits: u64,
    /// Cache misses across processors (Eq. 9 numerator).
    pub cache_misses: u64,
    /// Cache evictions observed.
    pub evictions: u64,
    /// Queries served by a non-preferred processor.
    pub stolen: u64,
    /// Queries served per processor (index = processor id).
    pub per_processor: Vec<u64>,
}

impl RunSnapshot {
    /// Cache hit rate in `[0, 1]` (Eq. 8).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Encoded size in bytes (matches `encode().len()` exactly).
    pub fn encoded_len(&self) -> usize {
        5 * 8 + 4 + 8 * self.per_processor.len()
    }

    /// Encodes to the little-endian wire layout.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u64_le(self.queries);
        buf.put_u64_le(self.cache_hits);
        buf.put_u64_le(self.cache_misses);
        buf.put_u64_le(self.evictions);
        buf.put_u64_le(self.stolen);
        buf.put_u32_le(self.per_processor.len() as u32);
        for &c in &self.per_processor {
            buf.put_u64_le(c);
        }
        buf.freeze()
    }

    /// Decodes from the wire layout.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation on truncated or oversized
    /// input.
    pub fn decode(mut data: Bytes) -> Result<Self, String> {
        if data.remaining() < 5 * 8 + 4 {
            return Err(format!(
                "snapshot header needs 44 bytes, have {}",
                data.remaining()
            ));
        }
        let queries = data.get_u64_le();
        let cache_hits = data.get_u64_le();
        let cache_misses = data.get_u64_le();
        let evictions = data.get_u64_le();
        let stolen = data.get_u64_le();
        let processors = data.get_u32_le() as usize;
        if data.remaining() != 8 * processors {
            return Err(format!(
                "snapshot body needs {} bytes for {processors} processors, have {}",
                8 * processors,
                data.remaining()
            ));
        }
        let per_processor = (0..processors).map(|_| data.get_u64_le()).collect();
        Ok(Self {
            queries,
            cache_hits,
            cache_misses,
            evictions,
            stolen,
            per_processor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunSnapshot {
        RunSnapshot {
            queries: 1000,
            cache_hits: 800,
            cache_misses: 200,
            evictions: 13,
            stolen: 4,
            per_processor: vec![250, 251, 249, 250],
        }
    }

    #[test]
    fn round_trip() {
        let s = sample();
        let bytes = s.encode();
        assert_eq!(bytes.len(), s.encoded_len());
        assert_eq!(RunSnapshot::decode(bytes).unwrap(), s);
    }

    #[test]
    fn hit_rate_math() {
        assert!((sample().hit_rate() - 0.8).abs() < 1e-12);
        assert_eq!(RunSnapshot::default().hit_rate(), 0.0);
    }

    #[test]
    fn decode_rejects_truncation_and_trailing() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                RunSnapshot::decode(bytes.slice(0..cut)).is_err(),
                "cut {cut}"
            );
        }
        let mut raw = bytes.to_vec();
        raw.push(0);
        assert!(RunSnapshot::decode(Bytes::from(raw)).is_err());
    }

    proptest::proptest! {
        #[test]
        fn prop_round_trip(
            queries in 0u64..u64::MAX / 2,
            hits in 0u64..1 << 40,
            misses in 0u64..1 << 40,
            evictions in 0u64..1 << 30,
            stolen in 0u64..1 << 30,
            per in proptest::collection::vec(0u64..1 << 50, 0..12),
        ) {
            let s = RunSnapshot {
                queries,
                cache_hits: hits,
                cache_misses: misses,
                evictions,
                stolen,
                per_processor: per,
            };
            let bytes = s.encode();
            proptest::prop_assert_eq!(bytes.len(), s.encoded_len());
            proptest::prop_assert_eq!(RunSnapshot::decode(bytes).unwrap(), s);
        }
    }
}
