//! Measurement primitives shared by every gRouting runtime.
//!
//! The paper evaluates three metrics (§4.1): *query response time*, *query
//! processing throughput*, and *cache hit rate*. This crate provides the
//! counters, histograms, and meters that the simulator, the live runtime, and
//! the benchmark harness use to compute them, plus fixed-width table and
//! series reporters that print rows in the same shape the paper's tables and
//! figures report.

pub mod counter;
pub mod heat;
pub mod histogram;
pub mod logger;
pub mod report;
pub mod snapshot;
pub mod throughput;
pub mod timeline;

pub use counter::{CacheCounters, Counter};
pub use heat::{DecayingHeat, HeatCell, HeatMap};
pub use histogram::Histogram;
pub use logger::set_node_role;
pub use report::{SeriesReport, TableReport};
pub use snapshot::{FailoverStats, RunSnapshot};
pub use throughput::ThroughputMeter;
pub use timeline::Timeline;

/// Nanoseconds expressed as a plain integer.
///
/// Both runtimes measure time in nanoseconds: the discrete-event simulator
/// because its virtual clock is an integer, and the live runtime because
/// [`std::time::Instant`] differences convert losslessly.
pub type Nanos = u64;

/// Converts nanoseconds to fractional milliseconds for reporting.
///
/// # Examples
///
/// ```
/// assert_eq!(grouting_metrics::nanos_to_millis(1_500_000), 1.5);
/// ```
pub fn nanos_to_millis(ns: Nanos) -> f64 {
    ns as f64 / 1e6
}

/// Converts nanoseconds to fractional seconds for reporting.
pub fn nanos_to_secs(ns: Nanos) -> f64 {
    ns as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(nanos_to_millis(0), 0.0);
        assert_eq!(nanos_to_millis(2_000_000), 2.0);
        assert_eq!(nanos_to_secs(1_000_000_000), 1.0);
        assert!((nanos_to_secs(500_000_000) - 0.5).abs() < 1e-12);
    }
}
