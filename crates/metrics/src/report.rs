//! Fixed-width table and series reporters for the bench harness.
//!
//! Each experiment bench prints its output through these types so every
//! figure/table reproduction has a uniform, diff-friendly shape: a header
//! block naming the paper artefact, column headers, and one row per
//! configuration (mirroring the rows/series the paper reports).

use std::fmt::Write as _;

/// A cell value in a report row.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Free-form text (e.g. a strategy name).
    Text(String),
    /// Integer quantity.
    Int(u64),
    /// Floating-point quantity rendered with two decimals.
    Float(f64),
    /// Missing / not-applicable.
    Na,
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::Float(v) => {
                if v.abs() >= 1000.0 {
                    format!("{v:.0}")
                } else {
                    format!("{v:.2}")
                }
            }
            Cell::Na => "-".to_string(),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v)
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(v as u64)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Float(v)
    }
}

/// A paper-style table: titled, with named columns and fixed-width rows.
#[derive(Debug, Clone)]
pub struct TableReport {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl TableReport {
    /// Creates a table titled after the paper artefact it reproduces.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the arity does not match the column count.
    pub fn row(&mut self, cells: Vec<Cell>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row arity mismatch in table `{}`",
            self.title
        );
        self.rows.push(cells);
        self
    }

    /// Number of rows currently recorded.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(Cell::render).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "=== {} ===", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let rule_len = header.join("  ").len();
        let _ = writeln!(out, "{}", "-".repeat(rule_len));
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// A named series (x, y) pairs — one curve of a paper figure.
#[derive(Debug, Clone)]
pub struct SeriesReport {
    title: String,
    x_label: String,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl SeriesReport {
    /// Creates a figure-style report with an x-axis label.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a named curve.
    pub fn series(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) -> &mut Self {
        self.series.push((name.into(), points));
        self
    }

    /// All curves added so far.
    pub fn curves(&self) -> &[(String, Vec<(f64, f64)>)] {
        &self.series
    }

    /// Renders every curve as `x -> y` rows, grouped per series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== {} ===", self.title);
        for (name, points) in &self.series {
            let _ = writeln!(out, "[{name}]");
            for (x, y) in points {
                let _ = writeln!(out, "  {:>12} {x:>10.2} -> {y:>12.3}", self.x_label);
            }
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_fixed_width() {
        let mut t = TableReport::new("Table X: demo", &["name", "value"]);
        t.row(vec!["alpha".into(), 42u64.into()]);
        t.row(vec!["b".into(), 7u64.into()]);
        let out = t.render();
        assert!(out.contains("=== Table X: demo ==="));
        assert!(out.contains("name"));
        assert!(out.contains("alpha"));
        assert!(out.contains("42"));
        // Every data line has the same width as the header line.
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_bad_arity() {
        let mut t = TableReport::new("t", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn cell_rendering() {
        assert_eq!(Cell::Float(3.1359).render(), "3.14");
        assert_eq!(Cell::Float(12345.6).render(), "12346");
        assert_eq!(Cell::Int(5).render(), "5");
        assert_eq!(Cell::Na.render(), "-");
    }

    #[test]
    fn series_renders_curves() {
        let mut s = SeriesReport::new("Fig Y", "processors");
        s.series("embed", vec![(1.0, 20.0), (7.0, 140.0)]);
        let out = s.render();
        assert!(out.contains("[embed]"));
        assert!(out.contains("140.000"));
        assert_eq!(s.curves().len(), 1);
    }
}
