//! Throughput measurement over a virtual or wall clock.

use crate::Nanos;

/// Measures queries-per-second over an explicit time interval.
///
/// Both runtimes feed this meter explicitly — the simulator with virtual
/// nanoseconds, the live runtime with elapsed wall nanoseconds — so the same
/// reporting code serves both.
#[derive(Debug, Default, Clone)]
pub struct ThroughputMeter {
    completed: u64,
    start: Option<Nanos>,
    end: Nanos,
}

impl ThroughputMeter {
    /// Creates an idle meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the stream start; the first completion may also set it.
    pub fn start_at(&mut self, t: Nanos) {
        self.start = Some(match self.start {
            Some(s) => s.min(t),
            None => t,
        });
        self.end = self.end.max(t);
    }

    /// Records one completed query at time `t`.
    pub fn complete_at(&mut self, t: Nanos) {
        if self.start.is_none() {
            self.start = Some(0);
        }
        self.completed += 1;
        self.end = self.end.max(t);
    }

    /// Number of completed queries.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Total observed makespan in nanoseconds.
    pub fn elapsed(&self) -> Nanos {
        match self.start {
            Some(s) => self.end.saturating_sub(s),
            None => 0,
        }
    }

    /// Queries per second; `None` until at least one query completed over a
    /// non-zero interval.
    pub fn qps(&self) -> Option<f64> {
        let elapsed = self.elapsed();
        if self.completed == 0 || elapsed == 0 {
            return None;
        }
        Some(self.completed as f64 / (elapsed as f64 / 1e9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_meter_has_no_qps() {
        let m = ThroughputMeter::new();
        assert_eq!(m.qps(), None);
        assert_eq!(m.elapsed(), 0);
    }

    #[test]
    fn qps_computed_over_interval() {
        let mut m = ThroughputMeter::new();
        m.start_at(0);
        for i in 1..=100u64 {
            m.complete_at(i * 10_000_000); // one query every 10 ms
        }
        assert_eq!(m.completed(), 100);
        let qps = m.qps().unwrap();
        assert!((qps - 100.0).abs() < 1e-9, "qps={qps}");
    }

    #[test]
    fn start_at_takes_minimum() {
        let mut m = ThroughputMeter::new();
        m.start_at(500);
        m.start_at(100);
        m.complete_at(1_000_000_100);
        assert_eq!(m.elapsed(), 1_000_000_000);
        assert!((m.qps().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_interval_yields_none() {
        let mut m = ThroughputMeter::new();
        m.start_at(7);
        m.complete_at(7);
        assert_eq!(m.qps(), None);
    }
}
