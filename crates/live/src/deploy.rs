//! The socket deployment frontend: a live run over real wire peers.
//!
//! Where [`crate::runtime::run_live`] keeps every tier in one process and
//! wires them with channels, this frontend hands the same configuration to
//! `grouting-wire`: the router, each query processor, and each storage
//! server become transport endpoints (TCP loopback by default), and every
//! dispatch, acknowledgement, and adjacency fetch crosses a framed
//! connection. The report comes back in the same [`LiveReport`] shape, so
//! callers — and the agreement tests — can compare deployments directly.

use std::sync::Arc;

use grouting_embed::embedding::Embedding;
use grouting_embed::landmarks::Landmarks;
use grouting_engine::EngineAssets;
use grouting_query::Query;
use grouting_storage::{Preset, StorageTier};
use grouting_wire::{launch_cluster, ClusterConfig, FetchMode, TransportKind, WireResult};

use crate::runtime::LiveConfig;
use crate::LiveReport;

/// Runs the query stream on a wire cluster (router + processors + storage
/// as transport peers) and returns wall-clock metrics.
///
/// `transport` picks the fabric — [`TransportKind::Tcp`] for real loopback
/// sockets, [`TransportKind::InProc`] for sandboxes without them
/// ([`TransportKind::from_env`] honours `GROUTING_NO_SOCKETS=1`). `net`
/// charges an emulated processor↔storage network per fetch at the storage
/// endpoints ([`Preset::Local`] charges nothing). `fetch` picks the miss
/// path — scalar per-node round trips or pipelined frontier batches
/// ([`FetchMode::from_env`] honours `GROUTING_BATCH=0`); both produce
/// identical results and cache statistics, batched just crosses the wire
/// far fewer times. `cfg.overlap` sets the per-processor in-flight query
/// window (cross-query fetch overlap in batched mode; `1` = strictly
/// serial with byte-identical cache statistics to [`run_live`]).
///
/// # Errors
///
/// Propagates wire-layer failures (bind/dial errors, protocol violations,
/// peers dying mid-run).
///
/// # Panics
///
/// Panics if `cfg.processors == 0`, or if a smart scheme is requested
/// without its preprocessing asset — the same contract as
/// [`crate::runtime::run_live`].
#[allow(clippy::too_many_arguments)] // Mirrors run_live plus the three wire knobs.
pub fn run_cluster(
    tier: Arc<StorageTier>,
    landmarks: Option<Arc<Landmarks>>,
    embedding: Option<Arc<Embedding>>,
    queries: &[Query],
    cfg: &LiveConfig,
    transport: TransportKind,
    net: Preset,
    fetch: FetchMode,
) -> WireResult<LiveReport> {
    let assets = EngineAssets::new(tier)
        .with_landmarks(landmarks)
        .with_embedding(embedding);
    let mut cluster_cfg = ClusterConfig::new(cfg.engine_config(), transport)
        .with_fetch(fetch)
        .with_trace(cfg.trace);
    cluster_cfg.net = net;
    let run = launch_cluster(&assets, queries, &cluster_cfg)?;
    Ok(LiveReport {
        results: run.results,
        cache_hits: run.snapshot.cache_hits,
        cache_misses: run.snapshot.cache_misses,
        stolen: run.snapshot.stolen,
        prefetch_issued: run.snapshot.prefetch_issued,
        prefetch_hits: run.snapshot.prefetch_hits,
        prefetch_wasted_bytes: run.snapshot.prefetch_wasted_bytes,
        redials: run.snapshot.redials,
        replica_failovers: run.snapshot.replica_failovers,
        batches_resubmitted: run.snapshot.batches_resubmitted,
        windows_resubmitted: run.snapshot.windows_resubmitted,
        partition_heat: run.snapshot.partition_heat,
        region_heat: run.snapshot.region_heat,
        trace: run.trace,
        timeline: run.timeline,
        wall_ns: run.wall_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_graph::traversal::{h_hop_neighborhood, Direction};
    use grouting_graph::{CsrGraph, GraphBuilder, NodeId};
    use grouting_partition::HashPartitioner;
    use grouting_query::QueryResult;
    use grouting_route::RoutingKind;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn chord_ring(k: u32) -> Arc<CsrGraph> {
        let mut b = GraphBuilder::new();
        for i in 0..k {
            b.add_edge(n(i), n((i + 1) % k));
            b.add_edge(n(i), n((i + 2) % k));
        }
        Arc::new(b.build().unwrap())
    }

    fn loaded_tier(g: &CsrGraph, servers: usize) -> Arc<StorageTier> {
        let tier = Arc::new(StorageTier::new(Arc::new(HashPartitioner::new(servers))));
        tier.load_graph(g).unwrap();
        tier
    }

    #[test]
    fn wire_deployment_answers_correctly() {
        let g = chord_ring(64);
        let tier = loaded_tier(&g, 2);
        let q: Vec<Query> = (0..40)
            .map(|i| Query::NeighborAggregation {
                node: n((i * 5) % 64),
                hops: 2,
                label: None,
            })
            .collect();
        let report = run_cluster(
            tier,
            None,
            None,
            &q,
            &LiveConfig::paper_default(3, RoutingKind::Hash),
            TransportKind::InProc,
            Preset::Local,
            FetchMode::Batched,
        )
        .unwrap();
        assert_eq!(report.results.len(), q.len());
        for (query, result) in q.iter().zip(&report.results) {
            let truth = h_hop_neighborhood(&g, query.anchor(), 2, Direction::Both).len() as u64;
            assert_eq!(*result, QueryResult::Count(truth));
        }
        assert!(report.throughput_qps() > 0.0);
    }
}
