//! The threaded router/processor runtime.

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use grouting_cache::Policy;
use grouting_embed::embedding::Embedding;
use grouting_embed::landmarks::Landmarks;
use grouting_engine::{Engine, EngineAssets, EngineConfig};
use grouting_metrics::timeline::QueryRecord;
use grouting_query::{AccessStats, Query, QueryResult};
use grouting_route::RoutingKind;
use grouting_storage::StorageTier;

/// Configuration for a live run.
#[derive(Debug, Clone, Copy)]
pub struct LiveConfig {
    /// Number of query-processor threads.
    pub processors: usize,
    /// Routing scheme.
    pub routing: RoutingKind,
    /// Per-processor cache capacity in bytes.
    pub cache_capacity: usize,
    /// Cache eviction policy.
    pub cache_policy: Policy,
    /// EMA smoothing for embed routing.
    pub alpha: f64,
    /// Load factor for d_LB.
    pub load_factor: f64,
    /// Whether stealing is enabled.
    pub stealing: bool,
    /// Queries admitted to router queues ahead of dispatch (0 = 16 × P).
    pub admission_window: usize,
    /// In-flight queries per *wire* processor (cross-query fetch overlap;
    /// 1 = strictly serial). The threaded in-process runtime executes one
    /// query per worker regardless — the knob only matters for
    /// [`crate::deploy::run_cluster`].
    pub overlap: usize,
    /// Speculative frontier prefetching (default off): frontier batches
    /// piggyback predicted next-hop nodes. Demand-side cache statistics
    /// are byte-identical either way.
    pub prefetch: grouting_query::PrefetchConfig,
    /// End-to-end tracing level for *wire* deployments (default honours
    /// `GROUTING_TRACE=off|stats|spans`). The threaded in-process runtime
    /// never traces — the knob only matters for
    /// [`crate::deploy::run_cluster`].
    pub trace: grouting_trace::TraceLevel,
    /// Seed for EMA initialisation.
    pub seed: u64,
}

impl LiveConfig {
    /// Paper-flavoured defaults for `processors` and a scheme.
    pub fn paper_default(processors: usize, routing: RoutingKind) -> Self {
        Self {
            processors,
            routing,
            cache_capacity: 256 << 20,
            cache_policy: Policy::Lru,
            alpha: 0.9,
            load_factor: 20.0,
            stealing: true,
            admission_window: 0,
            overlap: 2,
            prefetch: grouting_query::PrefetchConfig::OFF,
            trace: grouting_trace::TraceLevel::from_env(),
            seed: 0x11FE,
        }
    }

    /// The shared-engine view of this configuration.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            processors: self.processors,
            routing: self.routing,
            cache_capacity: self.cache_capacity,
            cache_policy: self.cache_policy,
            alpha: self.alpha,
            load_factor: self.load_factor,
            stealing: self.stealing,
            admission_window: self.admission_window,
            overlap: self.overlap,
            prefetch: self.prefetch,
            seed: self.seed,
        }
    }
}

enum Job {
    Run(u64, Query),
    Stop,
}

struct Ack {
    processor: usize,
    seq: u64,
    result: QueryResult,
    stats: AccessStats,
    started_ns: u64,
    completed_ns: u64,
}

/// Runs the query stream on real threads and returns wall-clock metrics.
///
/// Preprocessing assets are passed in so the router can build the smart
/// strategies; pass `None` for the baselines.
///
/// # Panics
///
/// Panics if `cfg.processors == 0`, or if a smart scheme is requested
/// without its preprocessing asset.
pub fn run_live(
    tier: Arc<StorageTier>,
    landmarks: Option<Arc<Landmarks>>,
    embedding: Option<Arc<Embedding>>,
    queries: &[Query],
    cfg: &LiveConfig,
) -> crate::LiveReport {
    let p = cfg.processors;

    // The whole stack — strategy, router, per-processor caches — comes from
    // the shared engine builder; this frontend only owns threads and clocks.
    let assets = EngineAssets::new(Arc::clone(&tier))
        .with_landmarks(landmarks)
        .with_embedding(embedding);
    let mut engine = Engine::new(&assets, &cfg.engine_config());

    let run_start = now_ns();
    let (ack_tx, ack_rx): (Sender<Ack>, Receiver<Ack>) = unbounded();

    // One bounded channel per processor: capacity 1 enforces the ack
    // protocol (the router can have at most one outstanding query per
    // processor). Each engine worker (cache + tier handle) moves onto its
    // own thread.
    let mut job_txs: Vec<Sender<Job>> = Vec::with_capacity(p);
    let mut handles = Vec::with_capacity(p);
    for mut worker in engine.take_workers() {
        let (tx, rx): (Sender<Job>, Receiver<Job>) = bounded(1);
        job_txs.push(tx);
        let ack_tx = ack_tx.clone();
        handles.push(std::thread::spawn(move || {
            let mut heat = grouting_metrics::HeatMap::new();
            while let Ok(job) = rx.recv() {
                match job {
                    Job::Run(seq, query) => {
                        let started_ns = now_ns();
                        let (out, miss_log) = worker.run(&query);
                        let completed_ns = now_ns();
                        for ev in miss_log {
                            heat.record_demand(ev.server as usize, 1);
                        }
                        let _ = ack_tx.send(Ack {
                            processor: worker.id(),
                            seq,
                            result: out.result,
                            stats: out.stats,
                            started_ns,
                            completed_ns,
                        });
                    }
                    Job::Stop => break,
                }
            }
            // The worker's cumulative speculation tally and demand heat
            // survive the thread: the runtime folds them into the report.
            (worker.prefetch_stats(), heat)
        }));
    }
    drop(ack_tx);

    // Router loop: keep the window full, dispatch on acks.
    let mut backlog = queries.iter().copied().enumerate();
    let mut arrivals: Vec<u64> = vec![0; queries.len()];
    let mut results: Vec<Option<QueryResult>> = vec![None; queries.len()];
    let mut outstanding = 0usize;
    let mut busy = vec![false; p];

    engine.admit(&mut backlog, |seq| arrivals[seq] = now_ns());
    // Prime every processor.
    for proc_id in 0..p {
        if let Some((seq, q)) = engine.next_for(proc_id) {
            job_txs[proc_id]
                .send(Job::Run(seq, q))
                .expect("worker alive");
            busy[proc_id] = true;
            outstanding += 1;
        }
    }

    while outstanding > 0 {
        let ack = ack_rx.recv().expect("workers alive while outstanding");
        outstanding -= 1;
        busy[ack.processor] = false;
        results[ack.seq as usize] = Some(ack.result);
        engine.complete(
            QueryRecord {
                seq: ack.seq,
                arrived: arrivals[ack.seq as usize],
                started: ack.started_ns,
                completed: ack.completed_ns,
                processor: ack.processor,
            },
            &ack.stats,
        );
        engine.admit(&mut backlog, |seq| arrivals[seq] = now_ns());
        // The acked processor first, then any other idle one (work may have
        // become stealable).
        for proc_id in std::iter::once(ack.processor).chain((0..p).filter(|&i| i != ack.processor))
        {
            if !busy[proc_id] {
                if let Some((seq, q)) = engine.next_for(proc_id) {
                    job_txs[proc_id]
                        .send(Job::Run(seq, q))
                        .expect("worker alive");
                    busy[proc_id] = true;
                    outstanding += 1;
                }
            }
        }
    }

    for tx in &job_txs {
        let _ = tx.send(Job::Stop);
    }
    let mut prefetch_totals = grouting_query::PrefetchStats::default();
    let mut partition_heat = grouting_metrics::HeatMap::new();
    for h in handles {
        let (prefetch, heat) = h.join().expect("worker thread exits cleanly");
        prefetch_totals.merge(&prefetch);
        partition_heat.merge(&heat);
    }

    let run = engine.finish();
    crate::LiveReport {
        timeline: run.timeline,
        results: results
            .into_iter()
            .map(|r| r.expect("every query completed"))
            .collect(),
        cache_hits: run.totals.cache_hits,
        cache_misses: run.totals.cache_misses,
        stolen: run.stolen,
        prefetch_issued: prefetch_totals.issued,
        prefetch_hits: prefetch_totals.hits,
        prefetch_wasted_bytes: prefetch_totals.wasted_bytes,
        // The in-process runtime has no wire to fail.
        redials: 0,
        replica_failovers: 0,
        batches_resubmitted: 0,
        windows_resubmitted: 0,
        partition_heat,
        // Region attribution is a router-side concern (the wire router
        // charges each dispatch to its nearest landmark region).
        region_heat: grouting_metrics::HeatMap::new(),
        trace: None,
        wall_ns: now_ns().saturating_sub(run_start),
    }
}

/// Monotonic nanoseconds since a process-wide epoch; all threads share the
/// same base so arrival/start/completion timestamps are comparable.
fn now_ns() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_embed::landmarks::LandmarkConfig;
    use grouting_embed::EmbeddingConfig;
    use grouting_graph::traversal::{h_hop_neighborhood, Direction};
    use grouting_graph::{CsrGraph, GraphBuilder, NodeId};
    use grouting_partition::HashPartitioner;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn chord_ring(k: u32) -> Arc<CsrGraph> {
        let mut b = GraphBuilder::new();
        for i in 0..k {
            b.add_edge(n(i), n((i + 1) % k));
            b.add_edge(n(i), n((i + 2) % k));
        }
        Arc::new(b.build().unwrap())
    }

    fn loaded_tier(g: &CsrGraph, servers: usize) -> Arc<StorageTier> {
        let tier = Arc::new(StorageTier::new(Arc::new(HashPartitioner::new(servers))));
        tier.load_graph(g).unwrap();
        tier
    }

    fn queries(k: u32) -> Vec<Query> {
        (0..60)
            .map(|i| Query::NeighborAggregation {
                node: n((i * 7) % k),
                hops: 2,
                label: None,
            })
            .collect()
    }

    #[test]
    fn hash_routing_completes_all_queries_correctly() {
        let g = chord_ring(96);
        let tier = loaded_tier(&g, 3);
        let q = queries(96);
        let report = run_live(
            tier,
            None,
            None,
            &q,
            &LiveConfig::paper_default(4, RoutingKind::Hash),
        );
        assert_eq!(report.results.len(), q.len());
        assert_eq!(report.timeline.len(), q.len());
        for (query, result) in q.iter().zip(&report.results) {
            let truth = h_hop_neighborhood(&g, query.anchor(), 2, Direction::Both).len() as u64;
            assert_eq!(*result, QueryResult::Count(truth));
        }
        assert!(report.wall_ns > 0);
        assert!(report.throughput_qps() > 0.0);
    }

    #[test]
    fn repeated_hotspot_queries_hit_caches() {
        let g = chord_ring(64);
        let tier = loaded_tier(&g, 2);
        // Everyone asks around node 0: second wave should hit.
        let q: Vec<Query> = (0..40)
            .map(|i| Query::NeighborAggregation {
                node: n(i % 4),
                hops: 2,
                label: None,
            })
            .collect();
        let report = run_live(
            tier,
            None,
            None,
            &q,
            &LiveConfig::paper_default(2, RoutingKind::Hash),
        );
        assert!(report.cache_hits > 0, "no cache hits on a hotspot");
        assert!(report.hit_rate() > 0.3, "hit rate {}", report.hit_rate());
    }

    #[test]
    fn no_cache_mode_has_zero_hits() {
        let g = chord_ring(64);
        let tier = loaded_tier(&g, 2);
        let q = queries(64);
        let report = run_live(
            tier,
            None,
            None,
            &q,
            &LiveConfig::paper_default(3, RoutingKind::NoCache),
        );
        assert_eq!(report.cache_hits, 0);
        assert!(report.cache_misses > 0);
    }

    #[test]
    fn embed_routing_runs_end_to_end() {
        let g = chord_ring(96);
        let tier = loaded_tier(&g, 3);
        let lm = Arc::new(Landmarks::build(
            &g,
            &LandmarkConfig {
                count: 8,
                min_separation: 8,
            },
        ));
        let emb = Arc::new(Embedding::build(
            &lm,
            &EmbeddingConfig {
                dimensions: 5,
                landmark_sweeps: 1,
                landmark_iters: 120,
                node_iters: 40,
                nearest_landmarks: 8,
                seed: 4,
            },
        ));
        let q = queries(96);
        let report = run_live(
            tier,
            Some(lm),
            Some(emb),
            &q,
            &LiveConfig::paper_default(4, RoutingKind::Embed),
        );
        assert_eq!(report.results.len(), q.len());
        for (query, result) in q.iter().zip(&report.results) {
            let truth = h_hop_neighborhood(&g, query.anchor(), 2, Direction::Both).len() as u64;
            assert_eq!(*result, QueryResult::Count(truth));
        }
    }

    #[test]
    fn landmark_routing_runs_end_to_end() {
        let g = chord_ring(64);
        let tier = loaded_tier(&g, 2);
        let lm = Arc::new(Landmarks::build(
            &g,
            &LandmarkConfig {
                count: 6,
                min_separation: 6,
            },
        ));
        let q = queries(64);
        let report = run_live(
            tier,
            Some(lm),
            None,
            &q,
            &LiveConfig::paper_default(3, RoutingKind::Landmark),
        );
        assert_eq!(report.results.len(), q.len());
    }

    #[test]
    #[should_panic(expected = "embed routing needs an embedding")]
    fn embed_without_assets_panics() {
        let g = chord_ring(16);
        let tier = loaded_tier(&g, 1);
        let _ = run_live(
            tier,
            None,
            None,
            &[],
            &LiveConfig::paper_default(1, RoutingKind::Embed),
        );
    }
}
