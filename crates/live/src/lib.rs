//! Real multi-threaded deployment of the decoupled architecture.
//!
//! Where `grouting-sim` charges virtual time, this runtime actually spawns
//! the tiers: one router thread, `P` query-processor threads (each owning
//! its cache), and the shared thread-safe storage tier. Communication uses
//! crossbeam channels; the dispatch protocol is the paper's ack-driven one —
//! "the router sends the next query to a processor only when it receives an
//! acknowledgement for the previous query from that processor" (§3.2) —
//! which yields query stealing for free exactly as in the simulator.
//!
//! Used by the examples and by concurrency tests; experiment benches use
//! the simulator for determinism.

pub mod report;
pub mod runtime;

pub use report::LiveReport;
pub use runtime::{run_live, LiveConfig};
