//! Real multi-threaded deployment of the decoupled architecture.
//!
//! Where `grouting-sim` charges virtual time, this runtime actually spawns
//! the tiers, in one of two deployments sharing a [`LiveConfig`]:
//!
//! * [`runtime::run_live`] — one process: a router thread, `P`
//!   query-processor threads (each owning its cache), and the shared
//!   thread-safe storage tier, wired with crossbeam channels;
//! * [`deploy::run_cluster`] — the socket deployment: the same tiers as
//!   independent `grouting-wire` endpoints (TCP loopback or the hermetic
//!   in-proc fabric), with every dispatch and adjacency fetch crossing a
//!   framed connection.
//!
//! Both follow the paper's ack-driven dispatch — "the router sends the
//! next query to a processor only when it receives an acknowledgement for
//! the previous query from that processor" (§3.2) — which yields query
//! stealing for free exactly as in the simulator.
//!
//! Used by the examples and by concurrency tests; experiment benches use
//! the simulator for determinism.

pub mod deploy;
pub mod report;
pub mod runtime;

pub use deploy::run_cluster;
pub use report::LiveReport;
pub use runtime::{run_live, LiveConfig};
