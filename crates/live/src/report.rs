//! Wall-clock measurements from a live run.

use grouting_metrics::{HeatMap, Timeline};
use grouting_query::QueryResult;

/// Results and metrics of one live cluster run.
#[derive(Debug)]
pub struct LiveReport {
    /// Per-query lifecycle (wall-clock nanoseconds since run start).
    pub timeline: Timeline,
    /// Query results in sequence order.
    pub results: Vec<QueryResult>,
    /// Total cache hits.
    pub cache_hits: u64,
    /// Total cache misses.
    pub cache_misses: u64,
    /// Queries stolen across processors.
    pub stolen: u64,
    /// Speculative nodes appended to frontier batches (zeros unless the
    /// run was configured with a prefetch policy).
    pub prefetch_issued: u64,
    /// Demand accesses served from the speculative staging buffer.
    pub prefetch_hits: u64,
    /// Speculatively fetched bytes dropped without ever being demanded.
    pub prefetch_wasted_bytes: u64,
    /// Storage redial attempts across the processors' reconnect paths
    /// (zeros for the in-process runtime, which has no wire to fail).
    pub redials: u64,
    /// Recoveries that landed on a non-primary storage replica.
    pub replica_failovers: u64,
    /// Outstanding fetch batches replayed on a fresh connection after an
    /// endpoint death.
    pub batches_resubmitted: u64,
    /// Processor-death events whose outstanding dispatch window the
    /// router resubmitted wholesale.
    pub windows_resubmitted: u64,
    /// Workload heat per storage partition: demand misses vs speculative
    /// fetches, one cell per storage server.
    pub partition_heat: HeatMap,
    /// Workload heat per landmark region (wire runs under a landmark-aware
    /// deployment; empty for the in-process runtime, which attributes no
    /// regions).
    pub region_heat: HeatMap,
    /// The trace layer's view of the run — per-stage latency histograms,
    /// reactor telemetry, and (at span level) recent query spans. `None`
    /// for the in-process runtime and for untraced wire runs.
    pub trace: Option<grouting_trace::TraceSnapshot>,
    /// Wall-clock duration of the whole run.
    pub wall_ns: u64,
}

impl LiveReport {
    /// Cache hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Wall-clock throughput in queries/second.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.timeline.len() as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Fraction of issued speculations that were demanded, in `[0, 1]`.
    pub fn prefetch_hit_rate(&self) -> f64 {
        if self.prefetch_issued == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / self.prefetch_issued as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report() {
        let r = LiveReport {
            timeline: Timeline::new(),
            results: vec![],
            cache_hits: 0,
            cache_misses: 0,
            stolen: 0,
            prefetch_issued: 0,
            prefetch_hits: 0,
            prefetch_wasted_bytes: 0,
            redials: 0,
            replica_failovers: 0,
            batches_resubmitted: 0,
            windows_resubmitted: 0,
            partition_heat: HeatMap::new(),
            region_heat: HeatMap::new(),
            trace: None,
            wall_ns: 0,
        };
        assert_eq!(r.hit_rate(), 0.0);
        assert_eq!(r.throughput_qps(), 0.0);
    }

    #[test]
    fn hit_rate_math() {
        let r = LiveReport {
            timeline: Timeline::new(),
            results: vec![],
            cache_hits: 9,
            cache_misses: 1,
            stolen: 0,
            prefetch_issued: 4,
            prefetch_hits: 3,
            prefetch_wasted_bytes: 0,
            redials: 2,
            replica_failovers: 1,
            batches_resubmitted: 1,
            windows_resubmitted: 0,
            partition_heat: HeatMap::new(),
            region_heat: HeatMap::new(),
            trace: None,
            wall_ns: 1,
        };
        assert!((r.hit_rate() - 0.9).abs() < 1e-12);
    }
}
