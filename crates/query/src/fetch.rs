//! The cache-then-storage fetch layer.
//!
//! Every adjacency record a query touches flows through here: first the
//! processor's local cache, then (on miss) a [`RecordSource`] — the storage
//! tier when processors hold direct handles, or a remote socket path when
//! the cluster is deployed over a wire transport. The hit/miss tallies
//! recorded per query are exactly the paper's cache-hit/cache-miss rates
//! (Eq. 8/9), and the miss byte counts are what the simulator feeds into
//! the network cost model.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use grouting_cache::Cache;
use grouting_graph::codec::AdjacencyRecord;
use grouting_graph::NodeId;
use grouting_storage::StorageTier;

use crate::prefetch::PrefetchState;

/// Where missed adjacency records come from.
///
/// The decoupled architecture means a processor's miss path is pluggable:
/// an in-process [`StorageTier`] handle (the simulator and the channel
/// runtime), or a framed socket connection to remote storage servers (the
/// `grouting-wire` deployment). Either way the contract is the same as
/// [`StorageTier::get`]: the serving server id plus the *encoded* value, so
/// byte-level cache accounting is identical on every path.
pub trait RecordSource {
    /// Fetches the encoded adjacency value for `node`, with the id of the
    /// storage server that served it; `None` when the node is not stored.
    fn fetch_raw(&mut self, node: NodeId) -> Option<(u16, Bytes)>;
}

impl RecordSource for &StorageTier {
    fn fetch_raw(&mut self, node: NodeId) -> Option<(u16, Bytes)> {
        self.get(node).map(|(s, b)| (s as u16, b))
    }
}

impl RecordSource for Arc<StorageTier> {
    fn fetch_raw(&mut self, node: NodeId) -> Option<(u16, Bytes)> {
        self.get(node).map(|(s, b)| (s as u16, b))
    }
}

impl<S: RecordSource + ?Sized> RecordSource for &mut S {
    fn fetch_raw(&mut self, node: NodeId) -> Option<(u16, Bytes)> {
        (**self).fetch_raw(node)
    }
}

/// A record source that can serve many nodes in one exchange.
///
/// This is the fetch-path contract the frontier-batched traversal relies
/// on: the executor collects the cache-miss portion of a whole BFS
/// frontier and hands it over in one call, so a wire-backed source can
/// group the nodes per storage server and ship a single pipelined batch
/// frame per server per hop instead of one blocking round trip per node.
/// The default implementation degrades to per-node [`RecordSource`]
/// fetches, which is exactly the scalar behaviour — in-process tier
/// handles override it with a direct multi-get, remote sources with the
/// `grouting-wire` batch protocol.
pub trait BatchSource: RecordSource {
    /// Fetches the encoded adjacency values for `nodes`, one entry per
    /// requested node in the same order (`None` where the node is not
    /// stored).
    fn fetch_batch(&mut self, nodes: &[NodeId]) -> Vec<Option<(u16, Bytes)>> {
        nodes.iter().map(|&n| self.fetch_raw(n)).collect()
    }
}

impl BatchSource for &StorageTier {
    fn fetch_batch(&mut self, nodes: &[NodeId]) -> Vec<Option<(u16, Bytes)>> {
        self.get_many(nodes)
            .into_iter()
            .map(|p| p.map(|(s, b)| (s as u16, b)))
            .collect()
    }
}

impl BatchSource for Arc<StorageTier> {
    fn fetch_batch(&mut self, nodes: &[NodeId]) -> Vec<Option<(u16, Bytes)>> {
        self.get_many(nodes)
            .into_iter()
            .map(|p| p.map(|(s, b)| (s as u16, b)))
            .collect()
    }
}

impl<S: BatchSource + ?Sized> BatchSource for &mut S {
    fn fetch_batch(&mut self, nodes: &[NodeId]) -> Vec<Option<(u16, Bytes)>> {
        (**self).fetch_batch(nodes)
    }
}

/// The concrete cache type a query processor holds: node id → shared
/// decoded record, sized by its encoded byte length.
pub type ProcessorCache = Box<dyn Cache<NodeId, Arc<AdjacencyRecord>>>;

/// Per-query access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Records served from the processor cache (Eq. 8 numerator).
    pub cache_hits: u64,
    /// Records fetched from the storage tier (Eq. 9 numerator).
    pub cache_misses: u64,
    /// Total encoded bytes pulled over the network on misses.
    pub miss_bytes: u64,
    /// Entries evicted from the cache while this query ran.
    pub evictions: u64,
}

impl AccessStats {
    /// Total record accesses.
    pub fn accesses(&self) -> u64 {
        self.cache_hits + self.cache_misses
    }

    /// Adds another query's stats into this one.
    pub fn merge(&mut self, other: &AccessStats) {
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.miss_bytes += other.miss_bytes;
        self.evictions += other.evictions;
    }
}

/// One storage-tier fetch: which server answered and how many bytes moved.
///
/// The discrete-event simulator replays these in order to model queueing at
/// the storage servers (Figure 8(c): 1–2 servers cannot feed 4 processors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissEvent {
    /// Storage server that served the get.
    pub server: u16,
    /// Encoded value size in bytes.
    pub bytes: u32,
}

/// A processor's view of the graph: its cache in front of a record source.
pub struct CacheBackedStore<'a, S: RecordSource> {
    source: S,
    cache: &'a mut ProcessorCache,
    /// Speculation state borrowed from the processor, when prefetching is
    /// deployed. Demand accounting is byte-identical either way (see
    /// [`crate::prefetch`]): the staging buffer only changes *where* a
    /// miss's bytes come from, never whether the access counts as one.
    prefetch: Option<&'a mut PrefetchState>,
    stats: AccessStats,
    miss_log: Vec<MissEvent>,
}

impl<'a, S: RecordSource> CacheBackedStore<'a, S> {
    /// Wraps a cache and a miss-path source (`&StorageTier`, an
    /// `Arc<StorageTier>`, or a remote transport-backed source) for one
    /// query's execution.
    pub fn new(source: S, cache: &'a mut ProcessorCache) -> Self {
        Self {
            source,
            cache,
            prefetch: None,
            stats: AccessStats::default(),
            miss_log: Vec::new(),
        }
    }

    /// Like [`CacheBackedStore::new`], with the processor's speculation
    /// state attached: staged payloads satisfy demand misses without a
    /// wire exchange, and [`CacheBackedStore::plan_speculative`] /
    /// [`CacheBackedStore::absorb_speculative`] become functional. An
    /// inert ([`PrefetchConfig::OFF`]) state degrades every path to the
    /// plain constructor's behaviour.
    pub fn with_prefetch(
        source: S,
        cache: &'a mut ProcessorCache,
        prefetch: &'a mut PrefetchState,
    ) -> Self {
        Self {
            source,
            cache,
            prefetch: Some(prefetch),
            stats: AccessStats::default(),
            miss_log: Vec::new(),
        }
    }

    /// Fetches the adjacency record of `node`, counting a hit or miss.
    pub fn fetch(&mut self, node: NodeId) -> Option<Arc<AdjacencyRecord>> {
        self.fetch_prefetched(node, &mut HashMap::new())
    }

    /// One cache-then-source access, optionally satisfied from a prefetch
    /// map. This is the *only* place hits, misses, bytes, evictions, and
    /// the miss log are recorded, so the scalar and batched paths cannot
    /// drift: [`CacheBackedStore::fetch_many`] replays exactly this
    /// sequence per node, merely sourcing the miss payloads from one batch
    /// exchange instead of one round trip each.
    fn fetch_prefetched(
        &mut self,
        node: NodeId,
        prefetched: &mut HashMap<NodeId, Option<(u16, Bytes)>>,
    ) -> Option<Arc<AdjacencyRecord>> {
        if let Some(rec) = self.cache.get(&node) {
            self.stats.cache_hits += 1;
            return Some(Arc::clone(rec));
        }
        // Miss-path payload priority: the batch answer for this node, then
        // the speculative staging buffer (bytes already fetched ahead of
        // time — counted below exactly like any other miss), then a scalar
        // source fetch.
        let payload = match prefetched.remove(&node) {
            Some(p) => p,
            None => match self.prefetch.as_mut().and_then(|s| s.take(node)) {
                Some(p) => Some(p),
                None => self.source.fetch_raw(node),
            },
        };
        let (server, bytes) = payload?;
        self.stats.cache_misses += 1;
        self.stats.miss_bytes += bytes.len() as u64;
        self.miss_log.push(MissEvent {
            server,
            bytes: bytes.len() as u32,
        });
        let size = bytes.len();
        let rec = Arc::new(AdjacencyRecord::decode(bytes).expect("tier stores valid records"));
        let evicted = self.cache.insert(node, Arc::clone(&rec), size);
        // An insert that bounces back (NullCache / oversized) is not an
        // eviction of previously cached data.
        self.stats.evictions += evicted.iter().filter(|(k, _)| *k != node).count() as u64;
        Some(rec)
    }

    /// Fetches a whole frontier of adjacency records through the cache,
    /// batching the miss portion into one [`BatchSource::fetch_batch`]
    /// call.
    ///
    /// Accounting is byte-identical to calling [`CacheBackedStore::fetch`]
    /// on each node in order (the Eq. 8/9 contract the agreement tests
    /// pin): a first, side-effect-free pass ([`CacheBackedStore::plan_many`])
    /// classifies each node with [`Cache::contains`] to assemble the miss
    /// set, then a second pass ([`CacheBackedStore::apply_many`]) replays
    /// the exact scalar get/insert sequence per node — so LRU recency
    /// order, eviction counts, and the miss log all evolve exactly as they
    /// would have one node at a time. Rare mid-batch reclassifications (a
    /// predicted hit evicted by an earlier insert in the same batch, or a
    /// duplicate whose first insert bounced) fall back to a scalar source
    /// fetch, which is again what the scalar path would have done.
    pub fn fetch_many(&mut self, nodes: &[NodeId]) -> Vec<Option<Arc<AdjacencyRecord>>>
    where
        S: BatchSource,
    {
        let miss_nodes = self.plan_many(nodes);
        // Speculation piggybacks on the demand batch: predicted next-hop
        // nodes travel in the same exchange, land in the staging buffer,
        // and spare a later frontier its round trip. Demand accounting is
        // untouched — apply_many never sees the speculative tail.
        let spec = self.plan_speculative(nodes, &miss_nodes);
        let payloads = if miss_nodes.is_empty() {
            Vec::new()
        } else if spec.is_empty() {
            self.source.fetch_batch(&miss_nodes)
        } else {
            let mut combined = miss_nodes.clone();
            combined.extend(&spec);
            let mut payloads = self.source.fetch_batch(&combined);
            let spec_payloads = payloads.split_off(miss_nodes.len());
            self.absorb_speculative(&spec, spec_payloads);
            payloads
        };
        self.apply_many(nodes, &miss_nodes, payloads)
    }

    /// Pass 1 of a batched frontier fetch: the cache-miss portion of
    /// `nodes` (first occurrence of each), classified with
    /// [`Cache::contains`] so no recency/frequency state moves. The staged
    /// executor calls this to learn what a frontier needs from storage
    /// *before* any bytes travel, so the fetch can be submitted
    /// asynchronously and overlapped with another query's compute. Nodes
    /// whose payloads are already staged speculatively need no wire
    /// exchange either — they are left out of the miss set and the apply
    /// pass serves them from the staging buffer.
    pub fn plan_many(&mut self, nodes: &[NodeId]) -> Vec<NodeId> {
        let mut miss_nodes: Vec<NodeId> = Vec::new();
        let mut miss_set: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        for &node in nodes {
            if self.cache.contains(&node) {
                continue;
            }
            // A staged payload is *reserved* here, not merely observed:
            // leaving the node out of the demand batch is a promise the
            // apply can consume the payload, so budget eviction must not
            // drop it in between.
            if let Some(state) = self.prefetch.as_mut() {
                if state.reserve_staged(node) {
                    continue;
                }
            }
            if miss_set.insert(node) {
                miss_nodes.push(node);
            }
        }
        miss_nodes
    }

    /// Observes `frontier` and proposes the speculative nodes to append to
    /// the batch fetching its `miss` portion (empty without an attached,
    /// enabled [`PrefetchState`], or when nothing is being fetched —
    /// speculation only piggybacks, it never creates an exchange). The
    /// caller ships `miss ++ returned` as one batch and feeds the
    /// speculative tail to [`CacheBackedStore::absorb_speculative`].
    pub fn plan_speculative(&mut self, frontier: &[NodeId], miss: &[NodeId]) -> Vec<NodeId> {
        match self.prefetch.as_mut() {
            Some(state) => state.plan(frontier, miss, &*self.cache),
            None => Vec::new(),
        }
    }

    /// Stages the payloads answering a speculative proposal (same order as
    /// [`CacheBackedStore::plan_speculative`] returned it). A no-op
    /// without an attached prefetch state.
    pub fn absorb_speculative(&mut self, nodes: &[NodeId], payloads: Vec<Option<(u16, Bytes)>>) {
        if let Some(state) = self.prefetch.as_mut() {
            state.absorb(nodes, payloads, &*self.cache);
        }
    }

    /// Pass 2 of a batched frontier fetch: replays the scalar access
    /// sequence over `nodes` in order, sourcing miss payloads from
    /// `payloads` (one entry per `miss_nodes` entry, in that order —
    /// normally the answer to a fetch of [`CacheBackedStore::plan_many`]'s
    /// return). A node that slipped between the plan and this apply (the
    /// cache evicted a predicted hit, or another query's apply raced the
    /// plan) falls back to a scalar source fetch, exactly as the serial
    /// path would have.
    pub fn apply_many(
        &mut self,
        nodes: &[NodeId],
        miss_nodes: &[NodeId],
        payloads: Vec<Option<(u16, Bytes)>>,
    ) -> Vec<Option<Arc<AdjacencyRecord>>> {
        debug_assert_eq!(miss_nodes.len(), payloads.len(), "one payload per miss");
        let mut prefetched: HashMap<NodeId, Option<(u16, Bytes)>> =
            miss_nodes.iter().copied().zip(payloads).collect();
        nodes
            .iter()
            .map(|&node| self.fetch_prefetched(node, &mut prefetched))
            .collect()
    }

    /// Swaps this store's accumulated statistics and miss log with the
    /// caller's. A processor overlapping several in-flight queries over
    /// *one* cache constructs a transient store per execution step and
    /// swaps the active query's accounting in before the step and out
    /// after it, so hits, misses, bytes, and evictions stay attributed to
    /// the query that caused them (totals then sum correctly across
    /// interleaved queries).
    pub fn swap_accounting(&mut self, stats: &mut AccessStats, miss_log: &mut Vec<MissEvent>) {
        std::mem::swap(&mut self.stats, stats);
        std::mem::swap(&mut self.miss_log, miss_log);
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Drains the ordered per-miss event log.
    pub fn take_miss_log(&mut self) -> Vec<MissEvent> {
        std::mem::take(&mut self.miss_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_cache::{LruCache, NullCache};
    use grouting_graph::{GraphBuilder, NodeId};
    use grouting_partition::HashPartitioner;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn tier() -> StorageTier {
        let mut b = GraphBuilder::new();
        for i in 0..9 {
            b.add_edge(n(i), n(i + 1));
        }
        let g = b.build().unwrap();
        let tier = StorageTier::new(std::sync::Arc::new(HashPartitioner::new(2)));
        tier.load_graph(&g).unwrap();
        tier
    }

    #[test]
    fn first_access_misses_second_hits() {
        let t = tier();
        let mut cache: ProcessorCache = Box::new(LruCache::new(1 << 20));
        let mut store = CacheBackedStore::new(&t, &mut cache);
        let a = store.fetch(n(3)).unwrap();
        assert_eq!(a.out, vec![n(4)]);
        let b = store.fetch(n(3)).unwrap();
        assert_eq!(a, b);
        let s = store.stats();
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert!(s.miss_bytes > 0);
    }

    #[test]
    fn null_cache_always_misses() {
        let t = tier();
        let mut cache: ProcessorCache = Box::new(NullCache::new());
        let mut store = CacheBackedStore::new(&t, &mut cache);
        store.fetch(n(1));
        store.fetch(n(1));
        store.fetch(n(1));
        let s = store.stats();
        assert_eq!(s.cache_hits, 0);
        assert_eq!(s.cache_misses, 3);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn missing_node_is_none_and_unrecorded() {
        let t = tier();
        let mut cache: ProcessorCache = Box::new(LruCache::new(1024));
        let mut store = CacheBackedStore::new(&t, &mut cache);
        assert!(store.fetch(n(500)).is_none());
        assert_eq!(store.stats().cache_misses, 0);
        assert_eq!(store.stats().cache_hits, 0);
    }

    #[test]
    fn evictions_are_counted() {
        let t = tier();
        // Tiny cache: each record ~25 bytes, capacity fits about one.
        let mut cache: ProcessorCache = Box::new(LruCache::new(40));
        let mut store = CacheBackedStore::new(&t, &mut cache);
        store.fetch(n(0));
        store.fetch(n(1));
        store.fetch(n(2));
        assert!(store.stats().evictions > 0);
    }

    #[test]
    fn fetch_many_batches_misses_and_matches_scalar_order() {
        let t = tier();
        let nodes: Vec<NodeId> = (0..8).map(n).collect();

        // Scalar reference: one fetch per node, in order.
        let mut scalar_cache: ProcessorCache = Box::new(LruCache::new(1 << 20));
        let mut scalar = CacheBackedStore::new(&t, &mut scalar_cache);
        let scalar_recs: Vec<_> = nodes.iter().map(|&v| scalar.fetch(v)).collect();
        let scalar_stats = scalar.stats();
        let scalar_log = scalar.take_miss_log();

        // Batched: the same nodes as one frontier.
        let mut cache: ProcessorCache = Box::new(LruCache::new(1 << 20));
        let mut store = CacheBackedStore::new(&t, &mut cache);
        let recs = store.fetch_many(&nodes);
        assert_eq!(recs, scalar_recs);
        assert_eq!(store.stats(), scalar_stats);
        assert_eq!(store.take_miss_log(), scalar_log);

        // A second pass over the same frontier is all hits on both paths.
        let again = store.fetch_many(&nodes);
        assert_eq!(again, recs);
        assert_eq!(store.stats().cache_hits, nodes.len() as u64);
    }

    #[test]
    fn fetch_many_handles_duplicates_and_missing_nodes() {
        let t = tier();
        // Duplicate inside the batch: first occurrence misses, second
        // hits (exactly what serial fetches would do); the unknown node
        // yields None without counting an access.
        let nodes = [n(2), n(500), n(2), n(3)];
        let mut cache: ProcessorCache = Box::new(LruCache::new(1 << 20));
        let mut store = CacheBackedStore::new(&t, &mut cache);
        let recs = store.fetch_many(&nodes);
        assert!(recs[0].is_some());
        assert!(recs[1].is_none());
        assert_eq!(recs[2], recs[0]);
        assert!(recs[3].is_some());
        let s = store.stats();
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 2);
    }

    #[test]
    fn fetch_many_with_null_cache_misses_everything() {
        let t = tier();
        let mut cache: ProcessorCache = Box::new(NullCache::new());
        let mut store = CacheBackedStore::new(&t, &mut cache);
        let nodes: Vec<NodeId> = (0..5).map(n).collect();
        store.fetch_many(&nodes);
        store.fetch_many(&nodes);
        let s = store.stats();
        assert_eq!(s.cache_hits, 0);
        assert_eq!(s.cache_misses, 10);
    }

    /// A recording source: proves the batched path issues exactly one
    /// batch per fetch_many call, containing only the miss portion.
    struct CountingSource<'a> {
        tier: &'a StorageTier,
        batches: Vec<Vec<NodeId>>,
        scalar_calls: usize,
    }

    impl RecordSource for CountingSource<'_> {
        fn fetch_raw(&mut self, node: NodeId) -> Option<(u16, Bytes)> {
            self.scalar_calls += 1;
            self.tier.get(node).map(|(s, b)| (s as u16, b))
        }
    }

    impl BatchSource for CountingSource<'_> {
        fn fetch_batch(&mut self, nodes: &[NodeId]) -> Vec<Option<(u16, Bytes)>> {
            self.batches.push(nodes.to_vec());
            nodes
                .iter()
                .map(|&v| self.tier.get(v).map(|(s, b)| (s as u16, b)))
                .collect()
        }
    }

    #[test]
    fn fetch_many_ships_only_the_miss_portion() {
        let t = tier();
        let mut cache: ProcessorCache = Box::new(LruCache::new(1 << 20));
        // Warm nodes 0 and 1.
        {
            let mut store = CacheBackedStore::new(&t, &mut cache);
            store.fetch(n(0));
            store.fetch(n(1));
        }
        let mut source = CountingSource {
            tier: &t,
            batches: Vec::new(),
            scalar_calls: 0,
        };
        let mut store = CacheBackedStore::new(&mut source, &mut cache);
        let nodes = [n(0), n(4), n(1), n(5)];
        let recs = store.fetch_many(&nodes);
        assert!(recs.iter().all(Option::is_some));
        let s = store.stats();
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.cache_misses, 2);
        drop(store);
        assert_eq!(source.batches, vec![vec![n(4), n(5)]], "misses only");
        assert_eq!(source.scalar_calls, 0, "no per-node fallback needed");
    }

    #[test]
    fn plan_then_apply_equals_fetch_many() {
        let t = tier();
        let nodes: Vec<NodeId> = [0u32, 3, 0, 7, 500, 3].iter().map(|&v| n(v)).collect();

        let mut ref_cache: ProcessorCache = Box::new(LruCache::new(1 << 20));
        let mut reference = CacheBackedStore::new(&t, &mut ref_cache);
        let want = reference.fetch_many(&nodes);
        let want_stats = reference.stats();

        // The staged split: plan, fetch the miss set out-of-band, apply.
        let mut cache: ProcessorCache = Box::new(LruCache::new(1 << 20));
        let mut store = CacheBackedStore::new(&t, &mut cache);
        let miss = store.plan_many(&nodes);
        assert_eq!(miss, vec![n(0), n(3), n(7), n(500)], "deduped misses");
        let payloads: Vec<Option<(u16, Bytes)>> = miss
            .iter()
            .map(|&v| t.get(v).map(|(s, b)| (s as u16, b)))
            .collect();
        let got = store.apply_many(&nodes, &miss, payloads);
        assert_eq!(got, want);
        assert_eq!(store.stats(), want_stats);
    }

    #[test]
    fn swap_accounting_attributes_per_query() {
        let t = tier();
        let mut cache: ProcessorCache = Box::new(LruCache::new(1 << 20));
        let mut store = CacheBackedStore::new(&t, &mut cache);

        // Query A's accounting, swapped in, then out.
        let mut a_stats = AccessStats::default();
        let mut a_log = Vec::new();
        store.swap_accounting(&mut a_stats, &mut a_log);
        store.fetch(n(0));
        store.fetch(n(1));
        store.swap_accounting(&mut a_stats, &mut a_log);
        assert_eq!(a_stats.cache_misses, 2);
        assert_eq!(a_log.len(), 2);

        // Query B interleaves on the same store: its stats start clean,
        // and A's are untouched while B runs.
        let mut b_stats = AccessStats::default();
        let mut b_log = Vec::new();
        store.swap_accounting(&mut b_stats, &mut b_log);
        store.fetch(n(0)); // hot from A
        store.fetch(n(2));
        store.swap_accounting(&mut b_stats, &mut b_log);
        assert_eq!(b_stats.cache_hits, 1);
        assert_eq!(b_stats.cache_misses, 1);
        assert_eq!(a_stats.cache_misses, 2, "A unchanged by B's run");
        // The store's own counters saw nothing while swapped out.
        assert_eq!(store.stats(), AccessStats::default());
    }

    proptest::proptest! {
        /// The batched fetch path produces byte-identical accounting to
        /// serial scalar fetches for ANY access sequence, batch split, and
        /// (tiny) cache capacity — including mid-batch evictions and
        /// duplicates, the cases where the two paths could plausibly
        /// diverge.
        #[test]
        fn prop_fetch_many_accounting_equals_scalar(
            accesses in proptest::collection::vec(0u32..12, 1..60),
            splits in proptest::collection::vec(1usize..8, 1..12),
            capacity_pick in 0usize..4,
        ) {
            let capacity = [40usize, 80, 200, 1 << 20][capacity_pick];
            let t = tier();

            // Scalar reference.
            let mut scalar_cache: ProcessorCache = Box::new(LruCache::new(capacity));
            let mut scalar = CacheBackedStore::new(&t, &mut scalar_cache);
            let scalar_recs: Vec<_> = accesses.iter().map(|&v| scalar.fetch(n(v))).collect();
            let scalar_stats = scalar.stats();
            let scalar_log = scalar.take_miss_log();

            // Batched: the same sequence chopped into arbitrary frontiers.
            let mut cache: ProcessorCache = Box::new(LruCache::new(capacity));
            let mut store = CacheBackedStore::new(&t, &mut cache);
            let mut recs = Vec::new();
            let mut offset = 0;
            let mut split_iter = splits.iter().copied().cycle();
            while offset < accesses.len() {
                let width = split_iter.next().unwrap().min(accesses.len() - offset);
                let frontier: Vec<NodeId> =
                    accesses[offset..offset + width].iter().map(|&v| n(v)).collect();
                recs.extend(store.fetch_many(&frontier));
                offset += width;
            }

            proptest::prop_assert_eq!(recs, scalar_recs);
            proptest::prop_assert_eq!(store.stats(), scalar_stats);
            proptest::prop_assert_eq!(store.take_miss_log(), scalar_log);
        }
    }

    #[test]
    fn stats_merge() {
        let mut a = AccessStats {
            cache_hits: 1,
            cache_misses: 2,
            miss_bytes: 30,
            evictions: 0,
        };
        let b = AccessStats {
            cache_hits: 4,
            cache_misses: 1,
            miss_bytes: 10,
            evictions: 2,
        };
        a.merge(&b);
        assert_eq!(a.cache_hits, 5);
        assert_eq!(a.accesses(), 8);
        assert_eq!(a.miss_bytes, 40);
        assert_eq!(a.evictions, 2);
    }
}
