//! The cache-then-storage fetch layer.
//!
//! Every adjacency record a query touches flows through here: first the
//! processor's local cache, then (on miss) a [`RecordSource`] — the storage
//! tier when processors hold direct handles, or a remote socket path when
//! the cluster is deployed over a wire transport. The hit/miss tallies
//! recorded per query are exactly the paper's cache-hit/cache-miss rates
//! (Eq. 8/9), and the miss byte counts are what the simulator feeds into
//! the network cost model.

use std::sync::Arc;

use bytes::Bytes;
use grouting_cache::Cache;
use grouting_graph::codec::AdjacencyRecord;
use grouting_graph::NodeId;
use grouting_storage::StorageTier;

/// Where missed adjacency records come from.
///
/// The decoupled architecture means a processor's miss path is pluggable:
/// an in-process [`StorageTier`] handle (the simulator and the channel
/// runtime), or a framed socket connection to remote storage servers (the
/// `grouting-wire` deployment). Either way the contract is the same as
/// [`StorageTier::get`]: the serving server id plus the *encoded* value, so
/// byte-level cache accounting is identical on every path.
pub trait RecordSource {
    /// Fetches the encoded adjacency value for `node`, with the id of the
    /// storage server that served it; `None` when the node is not stored.
    fn fetch_raw(&mut self, node: NodeId) -> Option<(u16, Bytes)>;
}

impl RecordSource for &StorageTier {
    fn fetch_raw(&mut self, node: NodeId) -> Option<(u16, Bytes)> {
        self.get(node).map(|(s, b)| (s as u16, b))
    }
}

impl RecordSource for Arc<StorageTier> {
    fn fetch_raw(&mut self, node: NodeId) -> Option<(u16, Bytes)> {
        self.get(node).map(|(s, b)| (s as u16, b))
    }
}

impl<S: RecordSource + ?Sized> RecordSource for &mut S {
    fn fetch_raw(&mut self, node: NodeId) -> Option<(u16, Bytes)> {
        (**self).fetch_raw(node)
    }
}

/// The concrete cache type a query processor holds: node id → shared
/// decoded record, sized by its encoded byte length.
pub type ProcessorCache = Box<dyn Cache<NodeId, Arc<AdjacencyRecord>>>;

/// Per-query access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Records served from the processor cache (Eq. 8 numerator).
    pub cache_hits: u64,
    /// Records fetched from the storage tier (Eq. 9 numerator).
    pub cache_misses: u64,
    /// Total encoded bytes pulled over the network on misses.
    pub miss_bytes: u64,
    /// Entries evicted from the cache while this query ran.
    pub evictions: u64,
}

impl AccessStats {
    /// Total record accesses.
    pub fn accesses(&self) -> u64 {
        self.cache_hits + self.cache_misses
    }

    /// Adds another query's stats into this one.
    pub fn merge(&mut self, other: &AccessStats) {
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.miss_bytes += other.miss_bytes;
        self.evictions += other.evictions;
    }
}

/// One storage-tier fetch: which server answered and how many bytes moved.
///
/// The discrete-event simulator replays these in order to model queueing at
/// the storage servers (Figure 8(c): 1–2 servers cannot feed 4 processors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissEvent {
    /// Storage server that served the get.
    pub server: u16,
    /// Encoded value size in bytes.
    pub bytes: u32,
}

/// A processor's view of the graph: its cache in front of a record source.
pub struct CacheBackedStore<'a, S: RecordSource> {
    source: S,
    cache: &'a mut ProcessorCache,
    stats: AccessStats,
    miss_log: Vec<MissEvent>,
}

impl<'a, S: RecordSource> CacheBackedStore<'a, S> {
    /// Wraps a cache and a miss-path source (`&StorageTier`, an
    /// `Arc<StorageTier>`, or a remote transport-backed source) for one
    /// query's execution.
    pub fn new(source: S, cache: &'a mut ProcessorCache) -> Self {
        Self {
            source,
            cache,
            stats: AccessStats::default(),
            miss_log: Vec::new(),
        }
    }

    /// Fetches the adjacency record of `node`, counting a hit or miss.
    pub fn fetch(&mut self, node: NodeId) -> Option<Arc<AdjacencyRecord>> {
        if let Some(rec) = self.cache.get(&node) {
            self.stats.cache_hits += 1;
            return Some(Arc::clone(rec));
        }
        let (server, bytes) = self.source.fetch_raw(node)?;
        self.stats.cache_misses += 1;
        self.stats.miss_bytes += bytes.len() as u64;
        self.miss_log.push(MissEvent {
            server,
            bytes: bytes.len() as u32,
        });
        let size = bytes.len();
        let rec = Arc::new(AdjacencyRecord::decode(bytes).expect("tier stores valid records"));
        let evicted = self.cache.insert(node, Arc::clone(&rec), size);
        // An insert that bounces back (NullCache / oversized) is not an
        // eviction of previously cached data.
        self.stats.evictions += evicted.iter().filter(|(k, _)| *k != node).count() as u64;
        Some(rec)
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Drains the ordered per-miss event log.
    pub fn take_miss_log(&mut self) -> Vec<MissEvent> {
        std::mem::take(&mut self.miss_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_cache::{LruCache, NullCache};
    use grouting_graph::{GraphBuilder, NodeId};
    use grouting_partition::HashPartitioner;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn tier() -> StorageTier {
        let mut b = GraphBuilder::new();
        for i in 0..9 {
            b.add_edge(n(i), n(i + 1));
        }
        let g = b.build().unwrap();
        let tier = StorageTier::new(std::sync::Arc::new(HashPartitioner::new(2)));
        tier.load_graph(&g).unwrap();
        tier
    }

    #[test]
    fn first_access_misses_second_hits() {
        let t = tier();
        let mut cache: ProcessorCache = Box::new(LruCache::new(1 << 20));
        let mut store = CacheBackedStore::new(&t, &mut cache);
        let a = store.fetch(n(3)).unwrap();
        assert_eq!(a.out, vec![n(4)]);
        let b = store.fetch(n(3)).unwrap();
        assert_eq!(a, b);
        let s = store.stats();
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert!(s.miss_bytes > 0);
    }

    #[test]
    fn null_cache_always_misses() {
        let t = tier();
        let mut cache: ProcessorCache = Box::new(NullCache::new());
        let mut store = CacheBackedStore::new(&t, &mut cache);
        store.fetch(n(1));
        store.fetch(n(1));
        store.fetch(n(1));
        let s = store.stats();
        assert_eq!(s.cache_hits, 0);
        assert_eq!(s.cache_misses, 3);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn missing_node_is_none_and_unrecorded() {
        let t = tier();
        let mut cache: ProcessorCache = Box::new(LruCache::new(1024));
        let mut store = CacheBackedStore::new(&t, &mut cache);
        assert!(store.fetch(n(500)).is_none());
        assert_eq!(store.stats().cache_misses, 0);
        assert_eq!(store.stats().cache_hits, 0);
    }

    #[test]
    fn evictions_are_counted() {
        let t = tier();
        // Tiny cache: each record ~25 bytes, capacity fits about one.
        let mut cache: ProcessorCache = Box::new(LruCache::new(40));
        let mut store = CacheBackedStore::new(&t, &mut cache);
        store.fetch(n(0));
        store.fetch(n(1));
        store.fetch(n(2));
        assert!(store.stats().evictions > 0);
    }

    #[test]
    fn stats_merge() {
        let mut a = AccessStats {
            cache_hits: 1,
            cache_misses: 2,
            miss_bytes: 30,
            evictions: 0,
        };
        let b = AccessStats {
            cache_hits: 4,
            cache_misses: 1,
            miss_bytes: 10,
            evictions: 2,
        };
        a.merge(&b);
        assert_eq!(a.cache_hits, 5);
        assert_eq!(a.accesses(), 8);
        assert_eq!(a.miss_bytes, 40);
        assert_eq!(a.evictions, 2);
    }
}
