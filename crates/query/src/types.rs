//! Query and result types.

use grouting_graph::{NodeId, NodeLabelId};

/// An online h-hop traversal query (§2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Query {
    /// Count the nodes within `hops` of `node` (bi-directed view); with a
    /// label, count only nodes carrying it.
    NeighborAggregation {
        /// The query node.
        node: NodeId,
        /// Traversal radius h.
        hops: u32,
        /// Optional label filter (ego-centric/label queries).
        label: Option<NodeLabelId>,
    },
    /// An h-step random walk with restart from `node`.
    RandomWalk {
        /// The query (and restart) node.
        node: NodeId,
        /// Number of steps h.
        steps: u32,
        /// Probability of returning to the query node at each step.
        restart_prob: f64,
        /// Walk seed, making execution deterministic.
        seed: u64,
    },
    /// Is `target` reachable from `source` within `hops` (directed)?
    Reachability {
        /// Source node (forward BFS).
        source: NodeId,
        /// Target node (backward BFS).
        target: NodeId,
        /// Hop budget h.
        hops: u32,
    },
    /// Label-constrained reachability (§2.2: "if there are node- and
    /// edge-label constraints in reachability computation, one can enforce
    /// such constraints while performing the BFS"): intermediate nodes on
    /// the path must carry `via_label`; the endpoints are exempt.
    ConstrainedReachability {
        /// Source node (forward BFS).
        source: NodeId,
        /// Target node (backward BFS).
        target: NodeId,
        /// Hop budget h.
        hops: u32,
        /// Required label of every intermediate node.
        via_label: NodeLabelId,
    },
}

impl Query {
    /// The *query node* a router bases its decision on.
    ///
    /// For reachability the source anchors the query, matching the paper's
    /// workload construction where query nodes are drawn from hotspots.
    pub fn anchor(&self) -> NodeId {
        match self {
            Query::NeighborAggregation { node, .. } => *node,
            Query::RandomWalk { node, .. } => *node,
            Query::Reachability { source, .. } => *source,
            Query::ConstrainedReachability { source, .. } => *source,
        }
    }

    /// The traversal radius h of the query.
    pub fn hops(&self) -> u32 {
        match self {
            Query::NeighborAggregation { hops, .. } => *hops,
            Query::RandomWalk { steps, .. } => *steps,
            Query::Reachability { hops, .. } => *hops,
            Query::ConstrainedReachability { hops, .. } => *hops,
        }
    }

    /// Short kind name for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Query::NeighborAggregation { .. } => "agg",
            Query::RandomWalk { .. } => "rwr",
            Query::Reachability { .. } => "reach",
            Query::ConstrainedReachability { .. } => "lreach",
        }
    }
}

/// The answer to a [`Query`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryResult {
    /// Neighbour-aggregation count.
    Count(u64),
    /// Random walk: final node and distinct nodes visited.
    Walk {
        /// Node the walk ended on.
        end: NodeId,
        /// Distinct nodes visited (including the start).
        visited: u64,
    },
    /// Reachability verdict.
    Reachable(bool),
}

impl QueryResult {
    /// The aggregation count, if this is a count result.
    pub fn count(&self) -> Option<u64> {
        match self {
            QueryResult::Count(c) => Some(*c),
            _ => None,
        }
    }

    /// The reachability verdict, if applicable.
    pub fn reachable(&self) -> Option<bool> {
        match self {
            QueryResult::Reachable(r) => Some(*r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn anchors() {
        let q1 = Query::NeighborAggregation {
            node: n(3),
            hops: 2,
            label: None,
        };
        let q2 = Query::RandomWalk {
            node: n(4),
            steps: 5,
            restart_prob: 0.15,
            seed: 1,
        };
        let q3 = Query::Reachability {
            source: n(5),
            target: n(9),
            hops: 3,
        };
        assert_eq!(q1.anchor(), n(3));
        assert_eq!(q2.anchor(), n(4));
        assert_eq!(q3.anchor(), n(5));
        assert_eq!(q1.hops(), 2);
        assert_eq!(q2.hops(), 5);
        assert_eq!(q3.hops(), 3);
        assert_eq!(q1.kind(), "agg");
        assert_eq!(q2.kind(), "rwr");
        assert_eq!(q3.kind(), "reach");
    }

    #[test]
    fn result_accessors() {
        assert_eq!(QueryResult::Count(7).count(), Some(7));
        assert_eq!(QueryResult::Count(7).reachable(), None);
        assert_eq!(QueryResult::Reachable(true).reachable(), Some(true));
        let w = QueryResult::Walk {
            end: n(2),
            visited: 4,
        };
        assert_eq!(w.count(), None);
    }
}
