//! Speculative frontier prefetching with demand/speculative accounting.
//!
//! Frontier batching (`grouting-flow`) made the per-level storage exchange
//! cheap, but a BFS still pays one full RTT per level before the next
//! level can start. This module piggybacks *predicted* next-hop nodes onto
//! the frontier batch already going out, so when the traversal reaches
//! them their bytes are on hand and the level needs no wire exchange at
//! all — cutting an RTT per level when the prediction lands.
//!
//! Two predictors ship (the [`Prefetcher`] trait takes more):
//!
//! * [`DegreePrefetcher`] — structural: among the frontier members whose
//!   adjacency is *already cached* (peeked without promotion side
//!   effects), speculate on the highest-degree members' neighbours — the
//!   nodes most likely to dominate the next frontier;
//! * [`HotspotPrefetcher`] — history: per-processor decayed access counts
//!   (the same exponential-forgetting idea as the route layer's EMA,
//!   Eq. 5, and PHD-Store's workload-adaptive placement), speculating on
//!   the hottest nodes the cache does not currently hold. Pays for itself
//!   after a short warm-up on skewed workloads.
//!
//! **Accounting contract.** Speculative payloads never enter the
//! processor cache directly — they wait in a bounded side buffer owned by
//! [`PrefetchState`]. A demand access that would miss checks the buffer
//! before going to storage: if the bytes are there, the access is *still
//! accounted as a cache miss* (same `miss_bytes`, same
//! [`crate::fetch::MissEvent`] — the bytes did cross the wire, just
//! earlier) and the record is inserted into the cache exactly as a demand
//! miss would be. The cache therefore sees the identical insert sequence
//! it would see with prefetch off, so Eq. 8/9 demand statistics, eviction
//! counts, and LRU state are byte-identical under ANY predictor and
//! budget — the property the prefetch proptests pin. The speculative side
//! is tallied separately in [`PrefetchStats`].

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use bytes::Bytes;
use grouting_graph::codec::AdjacencyRecord;
use grouting_graph::NodeId;

use crate::fetch::ProcessorCache;

/// Which prediction policy a deployment runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PrefetchPolicy {
    /// No speculation (the measured baseline).
    #[default]
    Off,
    /// Structural: highest-degree cached frontier members' neighbours.
    Degree,
    /// History: per-processor decayed access counts.
    Hotspot,
}

impl std::fmt::Display for PrefetchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrefetchPolicy::Off => write!(f, "off"),
            PrefetchPolicy::Degree => write!(f, "degree"),
            PrefetchPolicy::Hotspot => write!(f, "hotspot"),
        }
    }
}

/// The speculation policy plus its budget: how much a predictor may
/// piggyback.
///
/// Carried by every configuration layer (`EngineConfig`, `LiveConfig`,
/// `SimConfig`, the wire `ClusterConfig`) and honoured per batch: at most
/// `max_nodes` speculative nodes ride on one frontier fetch, and the
/// staging buffer holds at most `max_bytes` of speculative payloads
/// (oldest dropped first, counted as waste).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// The prediction policy ([`PrefetchPolicy::Off`] disables everything).
    pub policy: PrefetchPolicy,
    /// Most speculative nodes appended to one frontier batch.
    pub max_nodes: usize,
    /// Staging-buffer byte budget for not-yet-demanded payloads.
    pub max_bytes: usize,
}

impl PrefetchConfig {
    /// Prefetch disabled — the default everywhere.
    pub const OFF: Self = Self {
        policy: PrefetchPolicy::Off,
        max_nodes: 0,
        max_bytes: 0,
    };

    /// The default budget for an enabled policy: 256 nodes per batch,
    /// 4 MiB of staged payloads.
    pub fn with_policy(policy: PrefetchPolicy) -> Self {
        match policy {
            PrefetchPolicy::Off => Self::OFF,
            _ => Self {
                policy,
                max_nodes: 256,
                max_bytes: 4 << 20,
            },
        }
    }

    /// Whether any speculation happens under this configuration.
    pub fn enabled(&self) -> bool {
        self.policy != PrefetchPolicy::Off && self.max_nodes > 0
    }

    /// Parses a `GROUTING_PREFETCH` value: `off`/`0`/`false` disable,
    /// `degree` and `hotspot` pick a policy (optionally `policy:max_nodes`
    /// to override the per-batch node budget), `on`/`1` mean `hotspot`.
    /// `None` on anything else.
    pub fn parse(raw: &str) -> Option<Self> {
        let raw = raw.trim();
        let (policy_str, budget) = match raw.split_once(':') {
            Some((p, b)) => (p, Some(b)),
            None => (raw, None),
        };
        let policy = match policy_str.to_ascii_lowercase().as_str() {
            "off" | "0" | "false" | "" => PrefetchPolicy::Off,
            "degree" => PrefetchPolicy::Degree,
            "hotspot" | "on" | "1" | "true" => PrefetchPolicy::Hotspot,
            _ => return None,
        };
        let mut cfg = Self::with_policy(policy);
        if let Some(b) = budget {
            let nodes: usize = b.parse().ok().filter(|&n| n > 0)?;
            if policy == PrefetchPolicy::Off {
                return None; // "off:64" is a contradiction, not a budget.
            }
            cfg.max_nodes = nodes;
        }
        Some(cfg)
    }

    /// Honours the `GROUTING_PREFETCH` environment knob (default off). An
    /// invalid value is *reported* — one stderr line naming it — rather
    /// than silently ignored, then treated as off.
    pub fn from_env() -> Self {
        match std::env::var("GROUTING_PREFETCH") {
            Err(_) => Self::OFF,
            Ok(raw) => Self::parse(&raw).unwrap_or_else(|| {
                grouting_metrics::log_warn!(
                    "invalid GROUTING_PREFETCH value {raw:?} \
                     (expected off|degree|hotspot[:max_nodes]); prefetch stays off"
                );
                Self::OFF
            }),
        }
    }
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self::OFF
    }
}

/// Speculative-traffic counters, kept strictly apart from the demand-side
/// [`crate::fetch::AccessStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Speculative nodes appended to frontier batches.
    pub issued: u64,
    /// Demand accesses served from the staging buffer — a miss whose RTT
    /// was already paid speculatively ("hit because prefetched").
    pub hits: u64,
    /// Staged payload bytes dropped without ever being demanded (budget
    /// evictions and payloads that arrived after the cache already held
    /// the record). Payloads still *staged* when the tally is read are in
    /// neither bucket — they were fetched but not yet judged — so
    /// `issued >= hits + (wasted payload count)` at any instant.
    pub wasted_bytes: u64,
}

impl PrefetchStats {
    /// Adds another tally into this one.
    pub fn merge(&mut self, other: &PrefetchStats) {
        self.issued += other.issued;
        self.hits += other.hits;
        self.wasted_bytes += other.wasted_bytes;
    }

    /// Fraction of issued speculations that were demanded, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.hits as f64 / self.issued as f64
        }
    }
}

/// A prediction policy: proposes nodes to piggyback on a frontier batch.
///
/// `exclude` is the caller's residency filter (cached, already staged, in
/// flight, or part of the current frontier — fetching those would be pure
/// waste); `peek` reads a cached record *without* promotion side effects.
/// Implementations must be deterministic for a given observation history
/// (ties broken by node id), so prefetch-enabled runs are reproducible.
pub trait Prefetcher: Send {
    /// Proposes up to `budget` nodes worth speculating on for the frontier
    /// about to be fetched.
    fn predict(
        &mut self,
        frontier: &[NodeId],
        exclude: &dyn Fn(NodeId) -> bool,
        peek: &dyn Fn(NodeId) -> Option<Arc<AdjacencyRecord>>,
        budget: usize,
    ) -> Vec<NodeId>;

    /// Observes the demand frontier (every node the query is about to
    /// access), before prediction. History policies learn here.
    fn observe(&mut self, frontier: &[NodeId]);

    /// The policy's display name.
    fn name(&self) -> &'static str;
}

/// Structural predictor: the next BFS frontier is the neighbours of the
/// current one, and high-degree members contribute most of it. Frontier
/// members already resident in the cache expose their adjacency for free
/// (a promotion-free peek), so their neighbours can ride along with the
/// batch fetching the *rest* of the frontier — arriving one level early.
#[derive(Debug, Default)]
pub struct DegreePrefetcher;

impl Prefetcher for DegreePrefetcher {
    fn predict(
        &mut self,
        frontier: &[NodeId],
        exclude: &dyn Fn(NodeId) -> bool,
        peek: &dyn Fn(NodeId) -> Option<Arc<AdjacencyRecord>>,
        budget: usize,
    ) -> Vec<NodeId> {
        // Cached frontier members, highest fan-out first (ties by id so
        // prediction order is deterministic).
        let mut cached: Vec<(usize, NodeId, Arc<AdjacencyRecord>)> = frontier
            .iter()
            .filter_map(|&v| peek(v).map(|rec| (rec.degree(), v, rec)))
            .collect();
        cached.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        let mut proposed: Vec<NodeId> = Vec::new();
        let mut seen: HashSet<NodeId> = HashSet::new();
        'members: for (_, _, rec) in &cached {
            for w in rec.all_neighbors() {
                if proposed.len() >= budget {
                    break 'members;
                }
                if !exclude(w) && seen.insert(w) {
                    proposed.push(w);
                }
            }
        }
        proposed
    }

    fn observe(&mut self, _frontier: &[NodeId]) {}

    fn name(&self) -> &'static str {
        "degree"
    }
}

/// History predictor: exponentially decayed per-node access counts (the
/// EMA idea of Eq. 5 applied to the fetch stream, as PHD-Store applies it
/// to placement). Every observed frontier decays the whole table by
/// [`HotspotPrefetcher::DECAY`] and bumps its members; prediction proposes
/// the hottest nodes the cache does not currently hold.
#[derive(Debug)]
pub struct HotspotPrefetcher {
    counts: HashMap<NodeId, f64>,
    max_tracked: usize,
}

impl HotspotPrefetcher {
    /// Per-observation decay multiplier: history fades like the route
    /// layer's EMA, favouring the recent workload.
    pub const DECAY: f64 = 0.9;

    /// A predictor tracking at most `max_tracked` distinct nodes (the
    /// coldest half is pruned when the table overflows).
    pub fn new(max_tracked: usize) -> Self {
        Self {
            counts: HashMap::new(),
            max_tracked: max_tracked.max(16),
        }
    }
}

impl Default for HotspotPrefetcher {
    fn default() -> Self {
        Self::new(4096)
    }
}

impl Prefetcher for HotspotPrefetcher {
    fn predict(
        &mut self,
        _frontier: &[NodeId],
        exclude: &dyn Fn(NodeId) -> bool,
        _peek: &dyn Fn(NodeId) -> Option<Arc<AdjacencyRecord>>,
        budget: usize,
    ) -> Vec<NodeId> {
        let mut hot: Vec<(NodeId, f64)> = self
            .counts
            .iter()
            .filter(|(&v, _)| !exclude(v))
            .map(|(&v, &c)| (v, c))
            .collect();
        // Hottest first; ties by node id for determinism.
        hot.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        hot.truncate(budget);
        hot.into_iter().map(|(v, _)| v).collect()
    }

    fn observe(&mut self, frontier: &[NodeId]) {
        if frontier.is_empty() {
            return;
        }
        for c in self.counts.values_mut() {
            *c *= Self::DECAY;
        }
        for &v in frontier {
            *self.counts.entry(v).or_insert(0.0) += 1.0;
        }
        if self.counts.len() > self.max_tracked {
            // Prune the coldest half in one sweep — by (count, id) so ties
            // cannot defeat the cap (an all-equal table would survive a
            // count-threshold retain untouched).
            let mut entries: Vec<(f64, NodeId)> =
                self.counts.iter().map(|(&v, &c)| (c, v)).collect();
            let mid = entries.len() / 2;
            entries.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).unwrap());
            for (_, v) in &entries[..mid] {
                self.counts.remove(v);
            }
        }
    }

    fn name(&self) -> &'static str {
        "hotspot"
    }
}

/// One staged speculative payload.
struct Staged {
    server: u16,
    bytes: Bytes,
}

/// Per-processor speculation state: the configured predictor, the staging
/// buffer of fetched-but-not-yet-demanded payloads, and the speculative
/// tally. Lives with the processor's cache (one per worker or pipeline)
/// and is *borrowed* by transient [`crate::fetch::CacheBackedStore`]s, so
/// it persists across queries the way the cache does.
pub struct PrefetchState {
    config: PrefetchConfig,
    prefetcher: Option<Box<dyn Prefetcher>>,
    buffer: HashMap<NodeId, Staged>,
    /// Arrival order for budget eviction (may contain ids already taken;
    /// membership in `buffer` is authoritative).
    order: VecDeque<NodeId>,
    buffer_bytes: usize,
    /// Speculations submitted but not yet arrived (excluded from new
    /// predictions so pipelined batches don't re-request them).
    in_flight: HashSet<NodeId>,
    /// Staged nodes a frontier plan is counting on: excluded from the
    /// demand batch on the promise the payload is here, so budget
    /// eviction must not drop them before the apply consumes them (a
    /// broken promise would force a *blocking* scalar fetch inside the
    /// otherwise non-blocking pipeline step). Cleared on take.
    reserved: HashSet<NodeId>,
    /// Nodes some overlapped query's *demand* batch is currently
    /// fetching (reference-counted — interleaved queries may legally
    /// request the same node). Predictions exclude them: speculating on
    /// bytes already crossing the wire would ship them twice.
    demand_in_flight: HashMap<NodeId, u32>,
    stats: PrefetchStats,
}

impl PrefetchState {
    /// State for `config` ([`PrefetchConfig::OFF`] builds an inert state:
    /// every operation is a cheap no-op).
    pub fn new(config: PrefetchConfig) -> Self {
        let prefetcher: Option<Box<dyn Prefetcher>> = if config.enabled() {
            match config.policy {
                PrefetchPolicy::Off => None,
                PrefetchPolicy::Degree => Some(Box::new(DegreePrefetcher)),
                PrefetchPolicy::Hotspot => Some(Box::new(HotspotPrefetcher::default())),
            }
        } else {
            None
        };
        Self {
            config,
            prefetcher,
            buffer: HashMap::new(),
            order: VecDeque::new(),
            buffer_bytes: 0,
            in_flight: HashSet::new(),
            reserved: HashSet::new(),
            demand_in_flight: HashMap::new(),
            stats: PrefetchStats::default(),
        }
    }

    /// The configuration this state was built from.
    pub fn config(&self) -> &PrefetchConfig {
        &self.config
    }

    /// Whether a speculative payload for `node` is staged.
    pub fn contains(&self, node: NodeId) -> bool {
        self.buffer.contains_key(&node)
    }

    /// Records that a demand batch for `nodes` went on the wire: until
    /// [`PrefetchState::demand_arrived`] balances it, predictions will not
    /// propose these nodes (their bytes are already travelling). Drivers
    /// overlapping several queries over one state call this per submitted
    /// frontier; strictly serial drivers need not bother (the batch is
    /// collected before the next plan runs).
    pub fn demand_submitted(&mut self, nodes: &[NodeId]) {
        for &node in nodes {
            *self.demand_in_flight.entry(node).or_insert(0) += 1;
        }
    }

    /// Balances a [`PrefetchState::demand_submitted`] once the batch's
    /// payloads arrived.
    pub fn demand_arrived(&mut self, nodes: &[NodeId]) {
        for node in nodes {
            if let Some(count) = self.demand_in_flight.get_mut(node) {
                *count -= 1;
                if *count == 0 {
                    self.demand_in_flight.remove(node);
                }
            }
        }
    }

    /// If `node` is staged, *reserves* its payload — the caller may leave
    /// the node out of a demand batch, and the payload is guaranteed to
    /// survive budget eviction until [`PrefetchState::take`] consumes it.
    /// Returns whether the reservation held (false = not staged, fetch it
    /// normally).
    pub fn reserve_staged(&mut self, node: NodeId) -> bool {
        if self.buffer.contains_key(&node) {
            self.reserved.insert(node);
            true
        } else {
            false
        }
    }

    /// Bytes currently staged (not yet demanded, not yet wasted).
    pub fn staged_bytes(&self) -> usize {
        self.buffer_bytes
    }

    /// The speculative tally so far.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    /// Observes a demand frontier and proposes the speculative nodes to
    /// append to its batch. Empty when the policy is off or nothing is
    /// being fetched (`miss` empty — speculation only ever *piggybacks* on
    /// a demand exchange, it never creates one). `cache` is consulted
    /// promotion-free, both for exclusion and for the structural
    /// predictor's peeks.
    pub fn plan(
        &mut self,
        frontier: &[NodeId],
        miss: &[NodeId],
        cache: &ProcessorCache,
    ) -> Vec<NodeId> {
        let Some(prefetcher) = self.prefetcher.as_mut() else {
            return Vec::new();
        };
        prefetcher.observe(frontier);
        if miss.is_empty() {
            return Vec::new();
        }
        let frontier_set: HashSet<NodeId> = frontier.iter().chain(miss).copied().collect();
        let buffer = &self.buffer;
        let in_flight = &self.in_flight;
        let demand_in_flight = &self.demand_in_flight;
        let exclude = |v: NodeId| {
            cache.contains(&v)
                || buffer.contains_key(&v)
                || in_flight.contains(&v)
                || demand_in_flight.contains_key(&v)
                || frontier_set.contains(&v)
        };
        let peek = |v: NodeId| cache.peek(&v).cloned();
        let spec = prefetcher.predict(frontier, &exclude, &peek, self.config.max_nodes);
        self.stats.issued += spec.len() as u64;
        self.in_flight.extend(spec.iter().copied());
        spec
    }

    /// Stages the payloads answering a speculative request (`nodes` in the
    /// order [`PrefetchState::plan`] proposed them). Payloads for records
    /// the cache acquired in the meantime — or that are already staged —
    /// are waste, as is whatever the byte budget pushes out (oldest
    /// first).
    pub fn absorb(
        &mut self,
        nodes: &[NodeId],
        payloads: Vec<Option<(u16, Bytes)>>,
        cache: &ProcessorCache,
    ) {
        debug_assert_eq!(nodes.len(), payloads.len(), "one payload per speculation");
        for (&node, payload) in nodes.iter().zip(payloads) {
            self.in_flight.remove(&node);
            let Some((server, bytes)) = payload else {
                continue; // Not stored: nothing travelled beyond the id.
            };
            if cache.contains(&node) || self.buffer.contains_key(&node) {
                self.stats.wasted_bytes += bytes.len() as u64;
                continue;
            }
            self.buffer_bytes += bytes.len();
            self.buffer.insert(node, Staged { server, bytes });
            self.order.push_back(node);
        }
        // Budget eviction, oldest first — but never a reserved payload (a
        // plan already promised it to an in-flight apply). Reserved
        // survivors keep their queue position.
        let mut kept: Vec<NodeId> = Vec::new();
        while self.buffer_bytes > self.config.max_bytes {
            let Some(old) = self.order.pop_front() else {
                break;
            };
            if !self.buffer.contains_key(&old) {
                continue; // Stale queue entry (already taken).
            }
            if self.reserved.contains(&old) {
                kept.push(old);
                continue;
            }
            let staged = self.buffer.remove(&old).expect("membership checked");
            self.buffer_bytes -= staged.bytes.len();
            self.stats.wasted_bytes += staged.bytes.len() as u64;
        }
        for node in kept.into_iter().rev() {
            self.order.push_front(node);
        }
    }

    /// Takes the staged payload for a *demanded* node, counting the
    /// prefetch hit. The caller accounts the access as a normal demand
    /// miss — the bytes crossed the wire, just ahead of time.
    pub fn take(&mut self, node: NodeId) -> Option<(u16, Bytes)> {
        let staged = self.buffer.remove(&node)?;
        self.reserved.remove(&node);
        self.buffer_bytes -= staged.bytes.len();
        self.stats.hits += 1;
        Some((staged.server, staged.bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_cache::{LruCache, NullCache};
    use grouting_graph::codec::AdjacencyRecord;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn rec(out: &[u32], inc: &[u32]) -> Arc<AdjacencyRecord> {
        Arc::new(AdjacencyRecord {
            out: out.iter().map(|&v| n(v)).collect(),
            inc: inc.iter().map(|&v| n(v)).collect(),
            ..Default::default()
        })
    }

    #[test]
    fn parse_accepts_policies_budgets_and_rejects_junk() {
        assert_eq!(PrefetchConfig::parse("off"), Some(PrefetchConfig::OFF));
        assert_eq!(PrefetchConfig::parse("0"), Some(PrefetchConfig::OFF));
        let d = PrefetchConfig::parse("degree").unwrap();
        assert_eq!(d.policy, PrefetchPolicy::Degree);
        assert_eq!(d.max_nodes, 256);
        let h = PrefetchConfig::parse("hotspot:64").unwrap();
        assert_eq!(h.policy, PrefetchPolicy::Hotspot);
        assert_eq!(h.max_nodes, 64);
        assert_eq!(
            PrefetchConfig::parse("on").unwrap().policy,
            PrefetchPolicy::Hotspot
        );
        assert_eq!(PrefetchConfig::parse("bogus"), None);
        assert_eq!(PrefetchConfig::parse("degree:zero"), None);
        assert_eq!(PrefetchConfig::parse("degree:0"), None);
        assert_eq!(PrefetchConfig::parse("off:64"), None);
    }

    #[test]
    fn off_state_is_inert() {
        let mut state = PrefetchState::new(PrefetchConfig::OFF);
        let cache: ProcessorCache = Box::new(NullCache::new());
        assert!(state.plan(&[n(1), n(2)], &[n(1)], &cache).is_empty());
        assert_eq!(state.take(n(1)), None);
        assert_eq!(state.stats(), PrefetchStats::default());
    }

    #[test]
    fn degree_prefetcher_proposes_cached_members_neighbours_by_fanout() {
        let mut cache: ProcessorCache = Box::new(LruCache::new(1 << 20));
        // Node 1 (degree 3) and node 2 (degree 1) are cached; node 3 is not.
        cache.insert(n(1), rec(&[10, 11], &[12]), 10);
        cache.insert(n(2), rec(&[20], &[]), 10);
        let mut state = PrefetchState::new(PrefetchConfig::with_policy(PrefetchPolicy::Degree));
        let spec = state.plan(&[n(1), n(2), n(3)], &[n(3)], &cache);
        // Highest-degree member first: node 1's neighbours, then node 2's.
        assert_eq!(spec, vec![n(10), n(11), n(12), n(20)]);
        assert_eq!(state.stats().issued, 4);

        // The budget caps the proposal.
        let mut tight = PrefetchState::new(PrefetchConfig {
            max_nodes: 2,
            ..PrefetchConfig::with_policy(PrefetchPolicy::Degree)
        });
        assert_eq!(
            tight.plan(&[n(1), n(3)], &[n(3)], &cache),
            vec![n(10), n(11)]
        );
    }

    #[test]
    fn degree_prefetcher_excludes_resident_and_frontier_nodes() {
        let mut cache: ProcessorCache = Box::new(LruCache::new(1 << 20));
        cache.insert(n(1), rec(&[2, 10, 11], &[]), 10);
        cache.insert(n(10), rec(&[], &[]), 10); // Already cached → excluded.
        let mut state = PrefetchState::new(PrefetchConfig::with_policy(PrefetchPolicy::Degree));
        // 2 is in the frontier itself; 10 is cached; only 11 is worth it.
        let spec = state.plan(&[n(1), n(2)], &[n(2)], &cache);
        assert_eq!(spec, vec![n(11)]);
    }

    #[test]
    fn hotspot_prefetcher_learns_and_decays() {
        let cache: ProcessorCache = Box::new(NullCache::new());
        let mut state = PrefetchState::new(PrefetchConfig {
            max_nodes: 2,
            ..PrefetchConfig::with_policy(PrefetchPolicy::Hotspot)
        });
        // Node 7 is touched every round, node 8 once, node 9 twice.
        state.plan(&[n(7), n(8)], &[], &cache); // observe only (no miss)
        state.plan(&[n(7), n(9)], &[], &cache);
        state.plan(&[n(7), n(9)], &[], &cache);
        let spec = state.plan(&[n(1)], &[n(1)], &cache);
        assert_eq!(spec, vec![n(7), n(9)], "hottest two, decayed history");
        // In-flight nodes are not re-proposed on the next plan.
        let again = state.plan(&[n(1)], &[n(1)], &cache);
        assert!(!again.contains(&n(7)));
        assert!(!again.contains(&n(9)));
    }

    #[test]
    fn absorb_take_accounts_hits_and_waste() {
        let cache: ProcessorCache = Box::new(NullCache::new());
        let mut state = PrefetchState::new(PrefetchConfig {
            max_nodes: 8,
            max_bytes: 25,
            ..PrefetchConfig::with_policy(PrefetchPolicy::Hotspot)
        });
        let pay = |sz: usize| Some((0u16, Bytes::from(vec![0u8; sz])));
        // Three 10-byte payloads against a 25-byte budget: the oldest is
        // evicted as waste.
        state.absorb(&[n(1), n(2), n(3)], vec![pay(10), pay(10), pay(10)], &cache);
        assert_eq!(state.staged_bytes(), 20);
        assert_eq!(state.stats().wasted_bytes, 10);
        assert!(!state.contains(n(1)), "oldest evicted");
        // Demanding a staged node is a prefetch hit and frees its bytes.
        let (server, bytes) = state.take(n(2)).unwrap();
        assert_eq!(server, 0);
        assert_eq!(bytes.len(), 10);
        assert_eq!(state.stats().hits, 1);
        assert_eq!(state.staged_bytes(), 10);
        // A missing payload stages nothing.
        state.absorb(&[n(9)], vec![None], &cache);
        assert!(!state.contains(n(9)));
    }

    #[test]
    fn reserved_payloads_survive_budget_eviction() {
        // A plan that excluded a node from its demand batch has reserved
        // the staged payload; later speculative arrivals must evict around
        // it, never through it — otherwise the apply would be forced into
        // a blocking scalar fetch.
        let cache: ProcessorCache = Box::new(NullCache::new());
        let mut state = PrefetchState::new(PrefetchConfig {
            max_nodes: 8,
            max_bytes: 25,
            ..PrefetchConfig::with_policy(PrefetchPolicy::Hotspot)
        });
        let pay = |sz: usize| Some((0u16, Bytes::from(vec![0u8; sz])));
        state.absorb(&[n(1), n(2)], vec![pay(10), pay(10)], &cache);
        assert!(state.reserve_staged(n(1)), "staged payload reserves");
        assert!(!state.reserve_staged(n(99)), "unstaged does not");
        // Two more arrivals push the buffer to 40 bytes against a 25-byte
        // budget: the oldest unreserved entries (2, then 3) go; 1 stays.
        state.absorb(&[n(3), n(4)], vec![pay(10), pay(10)], &cache);
        assert!(state.contains(n(1)), "reserved entry survives");
        assert!(!state.contains(n(2)), "oldest unreserved evicted");
        assert_eq!(state.take(n(1)).map(|(_, b)| b.len()), Some(10));
    }

    #[test]
    fn demand_in_flight_nodes_are_not_proposed() {
        // Bytes already travelling for another query's demand batch must
        // not be speculated on (they would cross the wire twice).
        let cache: ProcessorCache = Box::new(NullCache::new());
        let mut state = PrefetchState::new(PrefetchConfig::with_policy(PrefetchPolicy::Hotspot));
        state.plan(&[n(7), n(8)], &[], &cache); // learn 7 and 8
        state.demand_submitted(&[n(7)]);
        let spec = state.plan(&[n(1)], &[n(1)], &cache);
        assert!(!spec.contains(&n(7)), "in-flight demand excluded");
        assert!(spec.contains(&n(8)));
        state.demand_arrived(&[n(7)]);
        let spec = state.plan(&[n(1)], &[n(1)], &cache);
        assert!(spec.contains(&n(7)), "proposable again after arrival");
    }

    #[test]
    fn absorb_skips_records_the_cache_acquired_meanwhile() {
        let mut cache: ProcessorCache = Box::new(LruCache::new(1 << 20));
        cache.insert(n(5), rec(&[], &[]), 10);
        let mut state = PrefetchState::new(PrefetchConfig::with_policy(PrefetchPolicy::Hotspot));
        state.absorb(&[n(5)], vec![Some((0, Bytes::from(vec![0u8; 7])))], &cache);
        assert!(!state.contains(n(5)));
        assert_eq!(state.stats().wasted_bytes, 7);
    }

    #[test]
    fn stats_merge_and_hit_rate() {
        let mut a = PrefetchStats {
            issued: 10,
            hits: 4,
            wasted_bytes: 100,
        };
        a.merge(&PrefetchStats {
            issued: 10,
            hits: 6,
            wasted_bytes: 11,
        });
        assert_eq!(a.issued, 20);
        assert_eq!(a.hits, 10);
        assert_eq!(a.wasted_bytes, 111);
        assert!((a.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(PrefetchStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn hotspot_table_prunes_past_its_cap() {
        let mut p = HotspotPrefetcher::new(16);
        for round in 0..10u32 {
            let frontier: Vec<NodeId> = (0..8).map(|i| n(round * 8 + i)).collect();
            p.observe(&frontier);
        }
        assert!(p.counts.len() <= 16 + 8, "table stays near its cap");
        // The most recent nodes survive pruning (decay favours them).
        assert!(p.counts.keys().any(|v| v.raw() >= 72));
    }

    // -----------------------------------------------------------------
    // The tentpole identity property: ANY prefetcher + budget leaves the
    // demand side byte-identical to a prefetch-off run.
    // -----------------------------------------------------------------

    use crate::executor::{ExecOutcome, Executor, StagedQuery, Step};
    use crate::fetch::{CacheBackedStore, MissEvent};
    use crate::types::{Query, QueryResult};
    use grouting_graph::GraphBuilder;
    use grouting_partition::HashPartitioner;
    use grouting_storage::StorageTier;

    fn proptest_tier(edges: &[(u32, u32)], nodes: u32) -> StorageTier {
        let mut b = GraphBuilder::with_nodes(nodes as usize);
        for &(s, d) in edges {
            b.add_edge(n(s), n(d));
        }
        let g = b.build().unwrap();
        let tier = StorageTier::new(std::sync::Arc::new(HashPartitioner::new(3)));
        tier.load_graph(&g).unwrap();
        tier
    }

    fn mixed_queries(anchors: &[u32], h: u32) -> Vec<Query> {
        anchors
            .iter()
            .enumerate()
            .map(|(i, &a)| match i % 3 {
                0 => Query::NeighborAggregation {
                    node: n(a),
                    hops: h,
                    label: None,
                },
                1 => Query::Reachability {
                    source: n(a),
                    target: n(a / 2),
                    hops: h,
                },
                _ => Query::RandomWalk {
                    node: n(a),
                    steps: h * 3,
                    restart_prob: 0.2,
                    seed: u64::from(a),
                },
            })
            .collect()
    }

    /// Serial prefetch-off reference: one shared cache, queries in order.
    fn run_baseline(
        tier: &StorageTier,
        queries: &[Query],
        capacity: usize,
    ) -> (Vec<ExecOutcome>, Vec<Vec<MissEvent>>) {
        let mut cache: ProcessorCache = Box::new(LruCache::new(capacity));
        let mut outs = Vec::new();
        let mut logs = Vec::new();
        for q in queries {
            let mut ex = Executor::new(tier, &mut cache);
            outs.push(ex.run(q));
            logs.push(ex.take_miss_log());
        }
        (outs, logs)
    }

    proptest::proptest! {
        /// Blocking execution with ANY policy and budget produces
        /// identical answers, demand hit/miss statistics, and miss logs
        /// to a prefetch-off run — over random graphs, mixed query kinds,
        /// and tiny (evicting) caches.
        #[test]
        fn prop_prefetch_keeps_demand_side_identical(
            edges in proptest::collection::vec((0u32..24, 0u32..24), 1..100),
            anchors in proptest::collection::vec(0u32..24, 1..12),
            h in 1u32..4,
            capacity_pick in 0usize..4,
            policy_pick in 0usize..2,
            max_nodes in 1usize..64,
            max_bytes_pick in 0usize..3,
        ) {
            let capacity = [60usize, 200, 1000, 1 << 20][capacity_pick];
            let tier = proptest_tier(&edges, 24);
            let queries = mixed_queries(&anchors, h);
            let (base_outs, base_logs) = run_baseline(&tier, &queries, capacity);

            let policy = [PrefetchPolicy::Degree, PrefetchPolicy::Hotspot][policy_pick];
            let config = PrefetchConfig {
                policy,
                max_nodes,
                max_bytes: [64usize, 1024, 1 << 20][max_bytes_pick],
            };
            let mut state = PrefetchState::new(config);
            let mut cache: ProcessorCache = Box::new(LruCache::new(capacity));
            for (i, q) in queries.iter().enumerate() {
                let mut ex = Executor::with_prefetch(&tier, &mut cache, &mut state);
                let out = ex.run(q);
                let log = ex.take_miss_log();
                proptest::prop_assert_eq!(out.result, base_outs[i].result, "query {}", i);
                proptest::prop_assert_eq!(out.stats, base_outs[i].stats, "query {}", i);
                proptest::prop_assert_eq!(log, base_logs[i].clone(), "query {}", i);
            }
        }

        /// The staged (pipeline-shaped) drive with speculative piggyback —
        /// plan, fetch miss + speculation in one exchange, absorb, resume —
        /// is also demand-identical to the prefetch-off serial run.
        #[test]
        fn prop_staged_prefetch_keeps_demand_side_identical(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 1..80),
            anchors in proptest::collection::vec(0u32..20, 1..10),
            h in 1u32..4,
            capacity_pick in 0usize..3,
            policy_pick in 0usize..2,
            max_nodes in 1usize..48,
        ) {
            let capacity = [60usize, 300, 1 << 20][capacity_pick];
            let tier = proptest_tier(&edges, 20);
            let queries = mixed_queries(&anchors, h);
            let (base_outs, base_logs) = run_baseline(&tier, &queries, capacity);

            let policy = [PrefetchPolicy::Degree, PrefetchPolicy::Hotspot][policy_pick];
            let mut state = PrefetchState::new(PrefetchConfig {
                max_nodes,
                ..PrefetchConfig::with_policy(policy)
            });
            let mut cache: ProcessorCache = Box::new(LruCache::new(capacity));
            for (i, q) in queries.iter().enumerate() {
                let mut staged = StagedQuery::new(*q);
                let mut payloads = None;
                let out = loop {
                    let mut source = &tier;
                    let mut store =
                        CacheBackedStore::with_prefetch(&mut source, &mut cache, &mut state);
                    match staged.resume(&mut store, payloads.take()) {
                        Step::Fetch(miss) => {
                            // The pipeline's piggyback: speculative nodes
                            // ride on the miss batch, their payloads go to
                            // the staging buffer.
                            let spec = store.plan_speculative(staged.frontier(), &miss);
                            let fetch = |v: &NodeId| tier.get(*v).map(|(s, b)| (s as u16, b));
                            let spec_payloads: Vec<_> = spec.iter().map(fetch).collect();
                            store.absorb_speculative(&spec, spec_payloads);
                            payloads = Some(miss.iter().map(fetch).collect());
                        }
                        Step::Done(out) => break out,
                    }
                };
                proptest::prop_assert_eq!(out.result, base_outs[i].result, "query {}", i);
                proptest::prop_assert_eq!(out.stats, base_outs[i].stats, "query {}", i);
                proptest::prop_assert_eq!(
                    staged.take_miss_log(), base_logs[i].clone(), "query {}", i
                );
            }
        }
    }

    /// Prefetch genuinely fires on a hotspot workload: a cache too small
    /// to retain the region forces repeat misses, and the history
    /// predictor turns them into staged hits — while every demand-side
    /// number still matches the prefetch-off run (asserted above; here we
    /// check the speculative tally is live, not zero).
    #[test]
    fn hotspot_workload_produces_prefetch_hits() {
        let edges: Vec<(u32, u32)> = (0..16u32)
            .flat_map(|i| [(i, (i + 1) % 16), (i, (i + 3) % 16)])
            .collect();
        let tier = proptest_tier(&edges, 16);
        let queries: Vec<Query> = (0..8u32)
            .map(|i| Query::NeighborAggregation {
                node: n(i % 4),
                hops: 2,
                label: None,
            })
            .collect();
        let mut state = PrefetchState::new(PrefetchConfig::with_policy(PrefetchPolicy::Hotspot));
        // A cache that holds nothing: every demand access misses, so any
        // staged payload that gets demanded is a prefetch hit.
        let mut cache: ProcessorCache = Box::new(NullCache::new());
        let mut results = Vec::new();
        for q in &queries {
            let mut ex = Executor::with_prefetch(&tier, &mut cache, &mut state);
            results.push(ex.run(q).result);
        }
        let stats = state.stats();
        assert!(stats.issued > 0, "speculation must fire");
        assert!(stats.hits > 0, "repeat traffic must be served from stage");
        // Answers unchanged vs the no-prefetch run.
        let mut plain_cache: ProcessorCache = Box::new(NullCache::new());
        for (q, want) in queries.iter().zip(&results) {
            let mut ex = Executor::new(&tier, &mut plain_cache);
            assert_eq!(ex.run(q).result, *want);
        }
        // All results are counts from the same ring.
        assert!(matches!(results[0], QueryResult::Count(_)));
    }
}
