//! Query execution over the cache-backed store.
//!
//! One executor instance runs on each query processor. The same code backs
//! the discrete-event simulator (which converts [`AccessStats`] into virtual
//! time), the live threaded runtime, and the correctness tests (which check
//! results against whole-graph traversals in `grouting-graph`).
//!
//! Two execution shapes share the same query algorithms:
//!
//! * [`Executor::run`] — runs a query to completion, blocking on every
//!   storage fetch (the simulator, the threaded runtime, and the scalar
//!   wire path);
//! * [`StagedQuery`] — the same execution split at frontier-fetch
//!   boundaries: each [`StagedQuery::resume`] advances until the query
//!   either finishes or needs remote records ([`Step::Fetch`]), letting a
//!   processor submit the fetch asynchronously and run *another* query's
//!   compute stage while the bytes travel (cross-query fetch overlap).
//!   Driven strictly serially it replays byte-identical cache accounting
//!   to [`Executor::run`].

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use bytes::Bytes;
use grouting_graph::codec::AdjacencyRecord;
use grouting_graph::{NodeId, NodeLabelId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fetch::{
    AccessStats, BatchSource, CacheBackedStore, MissEvent, ProcessorCache, RecordSource,
};
use crate::types::{Query, QueryResult};

/// The outcome of one query execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecOutcome {
    /// The query's answer.
    pub result: QueryResult,
    /// Cache/storage access statistics for the runtimes' cost models.
    pub stats: AccessStats,
}

/// Executes queries against a processor cache plus a record source (the
/// storage tier in-process, or a remote wire path).
pub struct Executor<'a, S: RecordSource> {
    store: CacheBackedStore<'a, S>,
}

impl<'a, S: RecordSource> Executor<'a, S> {
    /// Creates an executor borrowing the processor's cache for one or more
    /// query executions. `source` is the miss path — pass `&tier` for the
    /// classic in-process layout.
    pub fn new(source: S, cache: &'a mut ProcessorCache) -> Self {
        Self {
            store: CacheBackedStore::new(source, cache),
        }
    }

    /// An executor whose store carries the processor's speculation state:
    /// frontier fetches piggyback predicted next-hop nodes per the
    /// configured [`crate::prefetch::Prefetcher`], and demand misses are
    /// served from the staging buffer when the bytes already arrived.
    /// Demand accounting stays byte-identical to [`Executor::new`].
    pub fn with_prefetch(
        source: S,
        cache: &'a mut ProcessorCache,
        prefetch: &'a mut crate::prefetch::PrefetchState,
    ) -> Self {
        Self {
            store: CacheBackedStore::with_prefetch(source, cache, prefetch),
        }
    }

    /// Drains the ordered per-miss event log accumulated by queries run so
    /// far (used by the simulator's storage-contention model).
    pub fn take_miss_log(&mut self) -> Vec<crate::fetch::MissEvent> {
        self.store.take_miss_log()
    }

    /// Fetches one adjacency record through the cache — the building block
    /// for composite queries layered on the executor (e.g.
    /// [`crate::patterns::match_pattern`]).
    pub fn fetch_record(
        &mut self,
        node: NodeId,
    ) -> Option<std::sync::Arc<grouting_graph::codec::AdjacencyRecord>> {
        self.store.fetch(node)
    }

    /// Cumulative access statistics over everything run on this executor.
    pub fn stats(&self) -> AccessStats {
        self.store.stats()
    }
}

impl<'a, S: BatchSource> Executor<'a, S> {
    /// Runs one query to completion.
    pub fn run(&mut self, query: &Query) -> ExecOutcome {
        let before = self.store.stats();
        let result = run_query(&mut self.store, query);
        let after = self.store.stats();
        ExecOutcome {
            result,
            stats: AccessStats {
                cache_hits: after.cache_hits - before.cache_hits,
                cache_misses: after.cache_misses - before.cache_misses,
                miss_bytes: after.miss_bytes - before.miss_bytes,
                evictions: after.evictions - before.evictions,
            },
        }
    }
}

/// Runs one query to completion against `store`, blocking on fetches.
fn run_query<S: BatchSource>(store: &mut CacheBackedStore<'_, S>, query: &Query) -> QueryResult {
    match query {
        Query::NeighborAggregation { node, hops, label } => {
            neighbor_aggregation(store, *node, *hops, label.as_ref().copied())
        }
        Query::RandomWalk {
            node,
            steps,
            restart_prob,
            seed,
        } => random_walk(store, *node, *steps, *restart_prob, *seed),
        Query::Reachability {
            source,
            target,
            hops,
        } => reachability(store, *source, *target, *hops, None),
        Query::ConstrainedReachability {
            source,
            target,
            hops,
            via_label,
        } => reachability(store, *source, *target, *hops, Some(*via_label)),
    }
}

/// Level-batched BFS over the bi-directed view (the paper's
/// accounting: every node in `N_h(q)` is one cache/storage access).
///
/// Each hop collects the whole next frontier in discovery order and
/// fetches it through [`CacheBackedStore::fetch_many`], so the
/// cache-miss portion of a frontier travels as one batch per storage
/// server instead of one round trip per node. The discovery order —
/// each expanded node's unseen neighbours, concatenated in expansion
/// order — is exactly the order the node-at-a-time BFS fetched in, so
/// cache statistics are byte-identical to the scalar path.
fn neighbor_aggregation<S: BatchSource>(
    store: &mut CacheBackedStore<'_, S>,
    node: NodeId,
    hops: u32,
    label: Option<NodeLabelId>,
) -> QueryResult {
    let Some(start) = store.fetch(node) else {
        return QueryResult::Count(0);
    };
    let mut state = BfsState::after_root(node, hops, label, start);
    loop {
        let Some(frontier) = state.expand() else {
            return QueryResult::Count(state.count);
        };
        let records = store.fetch_many(&frontier);
        state.absorb(records);
    }
}

/// The level-batched BFS state shared by the blocking and staged shapes:
/// [`BfsState::expand`] derives the next frontier in discovery order,
/// [`BfsState::absorb`] folds the fetched records back in. Both shapes run
/// exactly this expand/fetch/absorb cycle, which is what keeps their
/// results and access orders identical.
struct BfsState {
    hops: u32,
    label: Option<NodeLabelId>,
    dist: HashMap<NodeId, u32>,
    count: u64,
    /// Records of the current level, in discovery order. A node at
    /// depth d is expanded iff d < hops; the query node always is.
    level: Vec<Arc<AdjacencyRecord>>,
    depth: u32,
}

impl BfsState {
    fn after_root(
        node: NodeId,
        hops: u32,
        label: Option<NodeLabelId>,
        start: Arc<AdjacencyRecord>,
    ) -> Self {
        Self {
            hops,
            label,
            dist: HashMap::from([(node, 0)]),
            count: 0,
            level: vec![start],
            depth: 0,
        }
    }

    /// The next frontier in discovery order, or `None` when the traversal
    /// is complete (empty level or hop budget spent).
    fn expand(&mut self) -> Option<Vec<NodeId>> {
        if self.level.is_empty() || !(self.depth == 0 || self.depth < self.hops) {
            return None;
        }
        let next_depth = self.depth + 1;
        let mut frontier: Vec<NodeId> = Vec::new();
        for rec in &self.level {
            for w in rec.all_neighbors() {
                if let std::collections::hash_map::Entry::Vacant(e) = self.dist.entry(w) {
                    e.insert(next_depth);
                    frontier.push(w);
                }
            }
        }
        Some(frontier)
    }

    /// Counts the fetched frontier records and installs the next level.
    fn absorb(&mut self, records: Vec<Option<Arc<AdjacencyRecord>>>) {
        let next_depth = self.depth + 1;
        let mut next = Vec::new();
        for rec in records {
            let labeled_ok = match (self.label, &rec) {
                (None, _) => true,
                (Some(l), Some(r)) => r.node_label == Some(l),
                (Some(_), None) => false,
            };
            self.count += u64::from(labeled_ok);
            if next_depth < self.hops {
                if let Some(r) = rec {
                    next.push(r);
                }
            }
        }
        self.level = next;
        self.depth = next_depth;
    }
}

/// h-step random walk with restart over out-edges (falling back to the
/// bi-directed view at sink nodes so walks don't die).
fn random_walk<S: RecordSource>(
    store: &mut CacheBackedStore<'_, S>,
    node: NodeId,
    steps: u32,
    restart_prob: f64,
    seed: u64,
) -> QueryResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = node;
    let mut visited: HashSet<NodeId> = HashSet::new();
    visited.insert(node);
    for _ in 0..steps {
        if rng.gen::<f64>() < restart_prob {
            current = node;
            continue;
        }
        let Some(rec) = store.fetch(current) else {
            break;
        };
        let next = if !rec.out.is_empty() {
            rec.out[rng.gen_range(0..rec.out.len())]
        } else if !rec.inc.is_empty() {
            rec.inc[rng.gen_range(0..rec.inc.len())]
        } else {
            node // Isolated: restart.
        };
        current = next;
        visited.insert(current);
    }
    QueryResult::Walk {
        end: current,
        visited: visited.len() as u64,
    }
}

/// Bidirectional BFS: forward over out-edges from the source, backward
/// over in-edges from the target, expanding the smaller frontier first.
///
/// With `via_label`, intermediate nodes must carry that label (the
/// endpoints are exempt) — the §2.2 label-constrained variant. The
/// constraint is enforced at *expansion* time: a node lacking the label
/// may be discovered (it could be the meeting endpoint) but its record
/// is never expanded, and a frontier meeting at an unlabelled
/// intermediate node does not count.
fn reachability<S: RecordSource>(
    store: &mut CacheBackedStore<'_, S>,
    source: NodeId,
    target: NodeId,
    hops: u32,
    via_label: Option<NodeLabelId>,
) -> QueryResult {
    if source == target {
        return QueryResult::Reachable(true);
    }
    if hops == 0 {
        return QueryResult::Reachable(false);
    }
    let mut fwd: HashMap<NodeId, u32> = HashMap::from([(source, 0)]);
    let mut bwd: HashMap<NodeId, u32> = HashMap::from([(target, 0)]);
    let mut fq: VecDeque<NodeId> = VecDeque::from([source]);
    let mut bq: VecDeque<NodeId> = VecDeque::from([target]);
    let fwd_budget = hops / 2 + hops % 2;
    let bwd_budget = hops / 2;

    // Expand each frontier level by level; meet-in-the-middle check on
    // every discovery.
    loop {
        let expand_fwd = match (fq.front(), bq.front()) {
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
            (Some(_), Some(_)) => fq.len() <= bq.len(),
        };
        let (queue, dist, other, budget, forward) = if expand_fwd {
            (&mut fq, &mut fwd, &bwd, fwd_budget, true)
        } else {
            (&mut bq, &mut bwd, &fwd, bwd_budget, false)
        };
        let Some(v) = queue.pop_front() else {
            continue;
        };
        let dv = dist[&v];
        if dv >= budget {
            continue;
        }
        let Some(rec) = store.fetch(v) else {
            continue;
        };
        // An intermediate node (anything but the endpoints) may only be
        // expanded if it satisfies the label constraint.
        if v != source && v != target {
            if let Some(l) = via_label {
                if rec.node_label != Some(l) {
                    continue;
                }
            }
        }
        let next: Vec<NodeId> = if forward {
            rec.out.clone()
        } else {
            rec.inc.clone()
        };
        for w in next {
            if let Some(&dw) = other.get(&w) {
                if dv + 1 + dw <= hops && meeting_ok(store, w, source, target, via_label) {
                    return QueryResult::Reachable(true);
                }
            }
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                e.insert(dv + 1);
                queue.push_back(w);
            }
        }
    }
    QueryResult::Reachable(false)
}

/// Whether the frontiers may legally meet at `w`: endpoints always; an
/// intermediate node only when it carries the required label.
fn meeting_ok<S: RecordSource>(
    store: &mut CacheBackedStore<'_, S>,
    w: NodeId,
    source: NodeId,
    target: NodeId,
    via_label: Option<NodeLabelId>,
) -> bool {
    if w == source || w == target {
        return true;
    }
    match via_label {
        None => true,
        Some(l) => store.fetch(w).is_some_and(|rec| rec.node_label == Some(l)),
    }
}

// ---------------------------------------------------------------------------
// Staged execution
// ---------------------------------------------------------------------------

/// What a staged query needs next.
#[derive(Debug)]
pub enum Step {
    /// The query needs these records fetched (the cache-miss portion of
    /// its next frontier, deduplicated, in discovery order). Fetch them —
    /// asynchronously, ideally — and pass the payloads, one entry per
    /// node in the same order, to the next [`StagedQuery::resume`].
    Fetch(Vec<NodeId>),
    /// The query finished.
    Done(ExecOutcome),
}

enum StagedPhase {
    /// Nothing has run yet.
    Start,
    /// The root node's fetch is in flight (`pending_miss` is empty when it
    /// was a cache hit and no fetch was needed).
    Root,
    /// A level's frontier fetch is in flight.
    Level,
    /// Terminal.
    Finished,
}

/// A query execution split at frontier-fetch boundaries.
///
/// Each [`StagedQuery::resume`] call advances the query as far as it can
/// against the local cache and returns either [`Step::Fetch`] (remote
/// records wanted — the caller fetches them and resumes with the payloads)
/// or [`Step::Done`]. Between calls the query holds no borrow on the cache
/// or the storage source, so a processor can keep several staged queries
/// in flight over one cache, overlapping one query's fetch with another's
/// compute.
///
/// Accounting: the query's [`AccessStats`] and miss log accumulate here,
/// not in the (possibly shared, transient) store — each resume swaps them
/// into the store for the duration of the step. Driven strictly serially
/// (resume, fetch, resume, …, with nothing interleaved) the sequence of
/// cache operations is exactly [`Executor::run`]'s, so results *and* cache
/// statistics are byte-identical to the blocking path.
///
/// Only [`Query::NeighborAggregation`] — the level-batched BFS, the shape
/// the paper's workloads are built from — actually stages its fetches;
/// the other query kinds run to completion inside the first resume,
/// blocking on the store's source as the serial path does.
pub struct StagedQuery {
    query: Query,
    stats: AccessStats,
    miss_log: Vec<MissEvent>,
    phase: StagedPhase,
    /// BFS traversal state, present from the root fetch onwards.
    bfs: Option<BfsState>,
    /// The frontier whose fetch is in flight (request order for
    /// `apply_many`).
    frontier: Vec<NodeId>,
    /// The miss portion of `frontier` handed out in the last
    /// [`Step::Fetch`].
    pending_miss: Vec<NodeId>,
}

impl StagedQuery {
    /// Prepares `query` for staged execution. Nothing runs until the first
    /// [`StagedQuery::resume`] (called with `None`).
    pub fn new(query: Query) -> Self {
        Self {
            query,
            stats: AccessStats::default(),
            miss_log: Vec::new(),
            phase: StagedPhase::Start,
            bfs: None,
            frontier: Vec::new(),
            pending_miss: Vec::new(),
        }
    }

    /// The query being executed.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The frontier whose fetch is pending (request order) — the full
    /// frontier, cache hits included, which is what a speculative
    /// predictor wants as context alongside the [`Step::Fetch`] miss set.
    /// Empty between fetches.
    pub fn frontier(&self) -> &[NodeId] {
        &self.frontier
    }

    /// Drains the ordered per-miss event log accumulated so far.
    pub fn take_miss_log(&mut self) -> Vec<MissEvent> {
        std::mem::take(&mut self.miss_log)
    }

    /// Advances the query: pass `None` on the first call, and the fetched
    /// payloads answering the previous [`Step::Fetch`] (one entry per
    /// requested node, in request order) on every later call.
    ///
    /// The store is only borrowed for the duration of the call; its
    /// accounting is swapped out for this query's, so a transient store
    /// over a shared cache attributes every access correctly.
    ///
    /// # Panics
    ///
    /// Panics when resumed after [`Step::Done`], or when `payloads` does
    /// not answer the previous step (wrong count, or missing entirely).
    pub fn resume<S: BatchSource>(
        &mut self,
        store: &mut CacheBackedStore<'_, S>,
        payloads: Option<Vec<Option<(u16, Bytes)>>>,
    ) -> Step {
        store.swap_accounting(&mut self.stats, &mut self.miss_log);
        let progress = self.advance(store, payloads);
        store.swap_accounting(&mut self.stats, &mut self.miss_log);
        match progress {
            Ok(miss) => Step::Fetch(miss),
            Err(result) => {
                self.phase = StagedPhase::Finished;
                Step::Done(ExecOutcome {
                    result,
                    stats: self.stats,
                })
            }
        }
    }

    /// `Ok(miss)` = fetch wanted, `Err(result)` = finished.
    fn advance<S: BatchSource>(
        &mut self,
        store: &mut CacheBackedStore<'_, S>,
        mut payloads: Option<Vec<Option<(u16, Bytes)>>>,
    ) -> Result<Vec<NodeId>, QueryResult> {
        loop {
            match self.phase {
                StagedPhase::Start => {
                    let Query::NeighborAggregation { node, .. } = self.query else {
                        // Non-BFS kinds execute in one blocking step.
                        return Err(run_query(store, &self.query));
                    };
                    // The root travels as a one-node frontier: identical
                    // accounting to the serial path's scalar root fetch.
                    self.frontier = vec![node];
                    self.pending_miss = store.plan_many(&self.frontier);
                    self.phase = StagedPhase::Root;
                    if !self.pending_miss.is_empty() {
                        return Ok(self.pending_miss.clone());
                    }
                }
                StagedPhase::Root => {
                    let got = self.apply(store, payloads.take());
                    let Query::NeighborAggregation { node, hops, label } = self.query else {
                        unreachable!("root phase implies an aggregation");
                    };
                    let Some(start) = got.into_iter().next().flatten() else {
                        return Err(QueryResult::Count(0));
                    };
                    self.bfs = Some(BfsState::after_root(node, hops, label, start));
                    self.phase = StagedPhase::Level;
                    self.frontier = match self.bfs.as_mut().expect("just set").expand() {
                        Some(f) => f,
                        None => return Err(QueryResult::Count(self.finished_count())),
                    };
                    self.pending_miss = store.plan_many(&self.frontier);
                    if !self.pending_miss.is_empty() {
                        return Ok(self.pending_miss.clone());
                    }
                }
                StagedPhase::Level => {
                    let records = self.apply(store, payloads.take());
                    let bfs = self.bfs.as_mut().expect("level phase has BFS state");
                    bfs.absorb(records);
                    self.frontier = match bfs.expand() {
                        Some(f) => f,
                        None => return Err(QueryResult::Count(self.finished_count())),
                    };
                    self.pending_miss = store.plan_many(&self.frontier);
                    if !self.pending_miss.is_empty() {
                        return Ok(self.pending_miss.clone());
                    }
                }
                StagedPhase::Finished => panic!("resumed a finished staged query"),
            }
        }
    }

    fn apply<S: BatchSource>(
        &mut self,
        store: &mut CacheBackedStore<'_, S>,
        payloads: Option<Vec<Option<(u16, Bytes)>>>,
    ) -> Vec<Option<Arc<AdjacencyRecord>>> {
        let payloads = if self.pending_miss.is_empty() {
            // Fully cache-served step: nothing was requested.
            payloads.unwrap_or_default()
        } else {
            payloads.expect("a pending fetch must be answered before resuming")
        };
        assert_eq!(
            payloads.len(),
            self.pending_miss.len(),
            "payloads must answer the pending fetch node-for-node"
        );
        let frontier = std::mem::take(&mut self.frontier);
        let miss = std::mem::take(&mut self.pending_miss);
        store.apply_many(&frontier, &miss, payloads)
    }

    fn finished_count(&self) -> u64 {
        self.bfs.as_ref().map_or(0, |b| b.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_cache::{LruCache, NullCache};
    use grouting_graph::traversal::{h_hop_neighborhood, hop_distance, Direction};
    use grouting_graph::{CsrGraph, GraphBuilder, NodeLabelId};
    use grouting_partition::HashPartitioner;
    use grouting_storage::StorageTier;
    use std::sync::Arc;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn setup(g: &CsrGraph) -> StorageTier {
        let tier = StorageTier::new(Arc::new(HashPartitioner::new(3)));
        tier.load_graph(g).unwrap();
        tier
    }

    fn path_with_chord() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_edge(n(i), n(i + 1));
        }
        b.add_edge(n(0), n(3));
        b.build().unwrap()
    }

    fn fresh_cache() -> ProcessorCache {
        Box::new(LruCache::new(1 << 20))
    }

    #[test]
    fn aggregation_matches_ground_truth() {
        let g = path_with_chord();
        let tier = setup(&g);
        for v in g.nodes() {
            for h in 1..=3u32 {
                let mut cache = fresh_cache();
                let mut ex = Executor::new(&tier, &mut cache);
                let out = ex.run(&Query::NeighborAggregation {
                    node: v,
                    hops: h,
                    label: None,
                });
                let truth = h_hop_neighborhood(&g, v, h, Direction::Both).len() as u64;
                assert_eq!(out.result, QueryResult::Count(truth), "node {v} h {h}");
            }
        }
    }

    #[test]
    fn aggregation_counts_accesses_per_eq8() {
        let g = path_with_chord();
        let tier = setup(&g);
        let mut cache = fresh_cache();
        let mut ex = Executor::new(&tier, &mut cache);
        let out = ex.run(&Query::NeighborAggregation {
            node: n(0),
            hops: 2,
            label: None,
        });
        // |N_2(0)| = {1, 3, 2, 4} = 4 neighbours + the query node itself.
        assert_eq!(out.result, QueryResult::Count(4));
        assert_eq!(out.stats.accesses(), 5);
        // Cold cache: every access missed.
        assert_eq!(out.stats.cache_misses, 5);
    }

    #[test]
    fn repeated_query_hits_cache() {
        let g = path_with_chord();
        let tier = setup(&g);
        let mut cache = fresh_cache();
        let q = Query::NeighborAggregation {
            node: n(0),
            hops: 2,
            label: None,
        };
        let mut ex = Executor::new(&tier, &mut cache);
        let first = ex.run(&q);
        let second = ex.run(&q);
        assert_eq!(first.result, second.result);
        assert_eq!(second.stats.cache_misses, 0);
        assert_eq!(second.stats.cache_hits, first.stats.cache_misses);
    }

    #[test]
    fn labeled_aggregation_filters() {
        let mut b = GraphBuilder::new();
        b.add_edge(n(0), n(1));
        b.add_edge(n(0), n(2));
        b.set_node_label(n(1), NodeLabelId::new(7));
        b.set_node_label(n(2), NodeLabelId::new(9));
        let g = b.build().unwrap();
        let tier = setup(&g);
        let mut cache = fresh_cache();
        let mut ex = Executor::new(&tier, &mut cache);
        let out = ex.run(&Query::NeighborAggregation {
            node: n(0),
            hops: 1,
            label: Some(NodeLabelId::new(7)),
        });
        assert_eq!(out.result, QueryResult::Count(1));
    }

    #[test]
    fn reachability_matches_ground_truth() {
        let g = path_with_chord();
        let tier = setup(&g);
        for s in g.nodes() {
            for t in g.nodes() {
                for h in 0..=4u32 {
                    let mut cache = fresh_cache();
                    let mut ex = Executor::new(&tier, &mut cache);
                    let out = ex.run(&Query::Reachability {
                        source: s,
                        target: t,
                        hops: h,
                    });
                    let truth = match hop_distance(&g, s, t, Direction::Out) {
                        Some(d) => d <= h,
                        None => false,
                    };
                    assert_eq!(
                        out.result,
                        QueryResult::Reachable(truth),
                        "{s}->{t} within {h}"
                    );
                }
            }
        }
    }

    #[test]
    fn random_walk_is_deterministic_and_bounded() {
        let g = path_with_chord();
        let tier = setup(&g);
        let q = Query::RandomWalk {
            node: n(0),
            steps: 16,
            restart_prob: 0.15,
            seed: 99,
        };
        let mut c1 = fresh_cache();
        let r1 = Executor::new(&tier, &mut c1).run(&q);
        let mut c2 = fresh_cache();
        let r2 = Executor::new(&tier, &mut c2).run(&q);
        assert_eq!(r1.result, r2.result);
        if let QueryResult::Walk { visited, .. } = r1.result {
            assert!((1..=5).contains(&visited));
        } else {
            panic!("wrong result kind");
        }
    }

    #[test]
    fn no_cache_mode_misses_everything() {
        let g = path_with_chord();
        let tier = setup(&g);
        let mut cache: ProcessorCache = Box::new(NullCache::new());
        let q = Query::NeighborAggregation {
            node: n(0),
            hops: 2,
            label: None,
        };
        let mut ex = Executor::new(&tier, &mut cache);
        let a = ex.run(&q);
        let b = ex.run(&q);
        assert_eq!(a.stats.cache_hits, 0);
        assert_eq!(b.stats.cache_hits, 0);
        assert_eq!(b.stats.cache_misses, a.stats.cache_misses);
    }

    #[test]
    fn constrained_reachability_respects_labels() {
        // 0 -> 1 -> 3 and 0 -> 2 -> 3; only node 1 carries the label.
        let mut b = GraphBuilder::new();
        b.add_edge(n(0), n(1));
        b.add_edge(n(1), n(3));
        b.add_edge(n(0), n(2));
        b.add_edge(n(2), n(3));
        b.set_node_label(n(1), NodeLabelId::new(5));
        b.set_node_label(n(2), NodeLabelId::new(9));
        let g = b.build().unwrap();
        let tier = setup(&g);
        let mut cache = fresh_cache();
        let mut ex = Executor::new(&tier, &mut cache);
        // Path through label-5 node exists.
        let ok = ex.run(&Query::ConstrainedReachability {
            source: n(0),
            target: n(3),
            hops: 2,
            via_label: NodeLabelId::new(5),
        });
        assert_eq!(ok.result, QueryResult::Reachable(true));
        // No path whose intermediates all carry label 7.
        let blocked = ex.run(&Query::ConstrainedReachability {
            source: n(0),
            target: n(3),
            hops: 2,
            via_label: NodeLabelId::new(7),
        });
        assert_eq!(blocked.result, QueryResult::Reachable(false));
        // Direct edges need no intermediates: source -> 1 within 1 hop holds
        // under any label constraint.
        let direct = ex.run(&Query::ConstrainedReachability {
            source: n(0),
            target: n(1),
            hops: 1,
            via_label: NodeLabelId::new(7),
        });
        assert_eq!(direct.result, QueryResult::Reachable(true));
    }

    #[test]
    fn constrained_reachability_long_chain() {
        // 0 -> 1 -> 2 -> 3 -> 4, all intermediates labelled 2 except node 2.
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_edge(n(i), n(i + 1));
        }
        for i in [1u32, 3] {
            b.set_node_label(n(i), NodeLabelId::new(2));
        }
        b.set_node_label(n(2), NodeLabelId::new(8));
        let g = b.build().unwrap();
        let tier = setup(&g);
        let mut cache = fresh_cache();
        let mut ex = Executor::new(&tier, &mut cache);
        // Node 2 breaks the label-2 chain.
        let r = ex.run(&Query::ConstrainedReachability {
            source: n(0),
            target: n(4),
            hops: 4,
            via_label: NodeLabelId::new(2),
        });
        assert_eq!(r.result, QueryResult::Reachable(false));
        // But the unconstrained query succeeds.
        let r2 = ex.run(&Query::Reachability {
            source: n(0),
            target: n(4),
            hops: 4,
        });
        assert_eq!(r2.result, QueryResult::Reachable(true));
    }

    #[test]
    fn missing_query_node_yields_empty_results() {
        let g = path_with_chord();
        let tier = setup(&g);
        let mut cache = fresh_cache();
        let mut ex = Executor::new(&tier, &mut cache);
        let out = ex.run(&Query::NeighborAggregation {
            node: n(77),
            hops: 2,
            label: None,
        });
        assert_eq!(out.result, QueryResult::Count(0));
    }

    /// Drives a [`StagedQuery`] exactly as a serial caller would: resume,
    /// fetch the requested nodes straight from the tier, resume again.
    fn run_staged(tier: &StorageTier, cache: &mut ProcessorCache, query: Query) -> ExecOutcome {
        let mut staged = StagedQuery::new(query);
        let mut payloads = None;
        loop {
            let mut source = tier;
            let mut store = CacheBackedStore::new(&mut source, cache);
            match staged.resume(&mut store, payloads.take()) {
                Step::Fetch(nodes) => {
                    payloads = Some(
                        nodes
                            .iter()
                            .map(|&w| tier.get(w).map(|(s, b)| (s as u16, b)))
                            .collect(),
                    );
                }
                Step::Done(out) => return out,
            }
        }
    }

    #[test]
    fn staged_bfs_matches_serial_run_and_accounting() {
        let g = path_with_chord();
        let tier = setup(&g);
        for v in g.nodes() {
            for h in 1..=3u32 {
                let q = Query::NeighborAggregation {
                    node: v,
                    hops: h,
                    label: None,
                };
                let mut serial_cache = fresh_cache();
                let serial = Executor::new(&tier, &mut serial_cache).run(&q);
                let mut cache = fresh_cache();
                let staged = run_staged(&tier, &mut cache, q);
                assert_eq!(staged.result, serial.result, "node {v} h {h}");
                assert_eq!(staged.stats, serial.stats, "node {v} h {h}");
            }
        }
    }

    #[test]
    fn staged_runs_share_a_cache_across_queries() {
        // Two staged queries over ONE cache: the second sees the first's
        // residue, exactly as two serial runs on one worker would.
        let g = path_with_chord();
        let tier = setup(&g);
        let q = Query::NeighborAggregation {
            node: n(0),
            hops: 2,
            label: None,
        };
        let mut cache = fresh_cache();
        let first = run_staged(&tier, &mut cache, q);
        let second = run_staged(&tier, &mut cache, q);
        assert_eq!(first.result, second.result);
        assert!(first.stats.cache_misses > 0);
        assert_eq!(second.stats.cache_misses, 0, "warm cache");
        assert_eq!(second.stats.cache_hits, first.stats.cache_misses);
    }

    #[test]
    fn staged_nonbfs_kinds_complete_in_one_step() {
        let g = path_with_chord();
        let tier = setup(&g);
        for q in [
            Query::RandomWalk {
                node: n(0),
                steps: 16,
                restart_prob: 0.15,
                seed: 7,
            },
            Query::Reachability {
                source: n(0),
                target: n(4),
                hops: 4,
            },
        ] {
            let mut serial_cache = fresh_cache();
            let serial = Executor::new(&tier, &mut serial_cache).run(&q);
            let mut cache = fresh_cache();
            let mut staged = StagedQuery::new(q);
            let mut source = &tier;
            let mut store = CacheBackedStore::new(&mut source, &mut cache);
            match staged.resume(&mut store, None) {
                Step::Done(out) => {
                    assert_eq!(out.result, serial.result);
                    assert_eq!(out.stats, serial.stats);
                }
                Step::Fetch(_) => panic!("non-BFS kinds must not stage"),
            }
        }
    }

    #[test]
    fn staged_missing_root_is_empty() {
        let g = path_with_chord();
        let tier = setup(&g);
        let mut cache = fresh_cache();
        let out = run_staged(
            &tier,
            &mut cache,
            Query::NeighborAggregation {
                node: n(77),
                hops: 2,
                label: None,
            },
        );
        assert_eq!(out.result, QueryResult::Count(0));
    }

    #[test]
    #[should_panic(expected = "finished staged query")]
    fn staged_resume_after_done_panics() {
        let g = path_with_chord();
        let tier = setup(&g);
        let mut cache = fresh_cache();
        let q = Query::RandomWalk {
            node: n(0),
            steps: 2,
            restart_prob: 0.0,
            seed: 1,
        };
        let mut staged = StagedQuery::new(q);
        let mut source = &tier;
        let mut store = CacheBackedStore::new(&mut source, &mut cache);
        let _ = staged.resume(&mut store, None);
        let _ = staged.resume(&mut store, None);
    }

    proptest::proptest! {
        /// Staged execution replays byte-identical results, statistics, and
        /// miss logs to the blocking executor for ANY query mix, graph, and
        /// (tiny) cache capacity — the overlap=1 agreement contract.
        #[test]
        fn prop_staged_equals_serial(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 1..80),
            anchors in proptest::collection::vec(0u32..24, 1..12),
            h in 1u32..4,
            capacity_pick in 0usize..3,
        ) {
            let capacity = [60usize, 300, 1 << 20][capacity_pick];
            let mut b = GraphBuilder::with_nodes(20);
            for (s, d) in &edges {
                b.add_edge(n(*s), n(*d));
            }
            let g = b.build().unwrap();
            let tier = setup(&g);
            let queries: Vec<Query> = anchors
                .iter()
                .enumerate()
                .map(|(i, &a)| match i % 3 {
                    0 => Query::NeighborAggregation { node: n(a), hops: h, label: None },
                    1 => Query::Reachability { source: n(a), target: n(a / 2), hops: h },
                    _ => Query::RandomWalk {
                        node: n(a),
                        steps: h * 3,
                        restart_prob: 0.2,
                        seed: u64::from(a),
                    },
                })
                .collect();

            // Serial reference: one worker cache, queries in order.
            let mut serial_cache: ProcessorCache = Box::new(LruCache::new(capacity));
            let mut serial_outs = Vec::new();
            let mut serial_logs = Vec::new();
            for q in &queries {
                let mut ex = Executor::new(&tier, &mut serial_cache);
                serial_outs.push(ex.run(q));
                serial_logs.push(ex.take_miss_log());
            }

            // Staged, driven strictly serially over one shared cache.
            let mut cache: ProcessorCache = Box::new(LruCache::new(capacity));
            for (i, q) in queries.iter().enumerate() {
                let mut staged = StagedQuery::new(*q);
                let mut payloads = None;
                let out = loop {
                    let mut source = &tier;
                    let mut store = CacheBackedStore::new(&mut source, &mut cache);
                    match staged.resume(&mut store, payloads.take()) {
                        Step::Fetch(nodes) => {
                            payloads = Some(
                                nodes
                                    .iter()
                                    .map(|&w| tier.get(w).map(|(s, b)| (s as u16, b)))
                                    .collect(),
                            );
                        }
                        Step::Done(out) => break out,
                    }
                };
                proptest::prop_assert_eq!(out.result, serial_outs[i].result, "query {}", i);
                proptest::prop_assert_eq!(out.stats, serial_outs[i].stats, "query {}", i);
                proptest::prop_assert_eq!(staged.take_miss_log(), serial_logs[i].clone(), "query {}", i);
            }
        }

        /// Distributed aggregation equals whole-graph BFS on random graphs.
        #[test]
        fn prop_aggregation_matches_bfs(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 1..80),
            src in 0u32..20,
            h in 1u32..4,
        ) {
            let mut b = GraphBuilder::with_nodes(20);
            for (s, d) in &edges {
                b.add_edge(n(*s), n(*d));
            }
            let g = b.build().unwrap();
            let tier = setup(&g);
            let mut cache = fresh_cache();
            let mut ex = Executor::new(&tier, &mut cache);
            let out = ex.run(&Query::NeighborAggregation { node: n(src), hops: h, label: None });
            let truth = h_hop_neighborhood(&g, n(src), h, Direction::Both).len() as u64;
            proptest::prop_assert_eq!(out.result, QueryResult::Count(truth));
        }

        /// Distributed reachability equals whole-graph bidirectional BFS.
        #[test]
        fn prop_reachability_matches(
            edges in proptest::collection::vec((0u32..16, 0u32..16), 1..60),
            s in 0u32..16,
            t in 0u32..16,
            h in 0u32..5,
        ) {
            let mut b = GraphBuilder::with_nodes(16);
            for (a, d) in &edges {
                b.add_edge(n(*a), n(*d));
            }
            let g = b.build().unwrap();
            let tier = setup(&g);
            let mut cache = fresh_cache();
            let mut ex = Executor::new(&tier, &mut cache);
            let out = ex.run(&Query::Reachability { source: n(s), target: n(t), hops: h });
            let truth = match hop_distance(&g, n(s), n(t), Direction::Out) {
                Some(d) => d <= h,
                None => false,
            };
            proptest::prop_assert_eq!(out.result, QueryResult::Reachable(truth));
        }
    }
}
