//! Query execution over the cache-backed store.
//!
//! One executor instance runs on each query processor. The same code backs
//! the discrete-event simulator (which converts [`AccessStats`] into virtual
//! time), the live threaded runtime, and the correctness tests (which check
//! results against whole-graph traversals in `grouting-graph`).

use std::collections::{HashMap, HashSet, VecDeque};

use grouting_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fetch::{AccessStats, BatchSource, CacheBackedStore, ProcessorCache, RecordSource};
use crate::types::{Query, QueryResult};

/// The outcome of one query execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecOutcome {
    /// The query's answer.
    pub result: QueryResult,
    /// Cache/storage access statistics for the runtimes' cost models.
    pub stats: AccessStats,
}

/// Executes queries against a processor cache plus a record source (the
/// storage tier in-process, or a remote wire path).
pub struct Executor<'a, S: RecordSource> {
    store: CacheBackedStore<'a, S>,
}

impl<'a, S: RecordSource> Executor<'a, S> {
    /// Creates an executor borrowing the processor's cache for one or more
    /// query executions. `source` is the miss path — pass `&tier` for the
    /// classic in-process layout.
    pub fn new(source: S, cache: &'a mut ProcessorCache) -> Self {
        Self {
            store: CacheBackedStore::new(source, cache),
        }
    }

    /// Drains the ordered per-miss event log accumulated by queries run so
    /// far (used by the simulator's storage-contention model).
    pub fn take_miss_log(&mut self) -> Vec<crate::fetch::MissEvent> {
        self.store.take_miss_log()
    }

    /// Fetches one adjacency record through the cache — the building block
    /// for composite queries layered on the executor (e.g.
    /// [`crate::patterns::match_pattern`]).
    pub fn fetch_record(
        &mut self,
        node: NodeId,
    ) -> Option<std::sync::Arc<grouting_graph::codec::AdjacencyRecord>> {
        self.store.fetch(node)
    }

    /// Cumulative access statistics over everything run on this executor.
    pub fn stats(&self) -> AccessStats {
        self.store.stats()
    }
}

impl<'a, S: BatchSource> Executor<'a, S> {
    /// Runs one query to completion.
    pub fn run(&mut self, query: &Query) -> ExecOutcome {
        let before = self.store.stats();
        let result = match query {
            Query::NeighborAggregation { node, hops, label } => {
                self.neighbor_aggregation(*node, *hops, label.as_ref().copied())
            }
            Query::RandomWalk {
                node,
                steps,
                restart_prob,
                seed,
            } => self.random_walk(*node, *steps, *restart_prob, *seed),
            Query::Reachability {
                source,
                target,
                hops,
            } => self.reachability(*source, *target, *hops, None),
            Query::ConstrainedReachability {
                source,
                target,
                hops,
                via_label,
            } => self.reachability(*source, *target, *hops, Some(*via_label)),
        };
        let after = self.store.stats();
        ExecOutcome {
            result,
            stats: AccessStats {
                cache_hits: after.cache_hits - before.cache_hits,
                cache_misses: after.cache_misses - before.cache_misses,
                miss_bytes: after.miss_bytes - before.miss_bytes,
                evictions: after.evictions - before.evictions,
            },
        }
    }

    /// Level-batched BFS over the bi-directed view (the paper's
    /// accounting: every node in `N_h(q)` is one cache/storage access).
    ///
    /// Each hop collects the whole next frontier in discovery order and
    /// fetches it through [`CacheBackedStore::fetch_many`], so the
    /// cache-miss portion of a frontier travels as one batch per storage
    /// server instead of one round trip per node. The discovery order —
    /// each expanded node's unseen neighbours, concatenated in expansion
    /// order — is exactly the order the node-at-a-time BFS fetched in, so
    /// cache statistics are byte-identical to the scalar path.
    fn neighbor_aggregation(
        &mut self,
        node: NodeId,
        hops: u32,
        label: Option<grouting_graph::NodeLabelId>,
    ) -> QueryResult {
        let Some(start) = self.store.fetch(node) else {
            return QueryResult::Count(0);
        };
        let mut dist: HashMap<NodeId, u32> = HashMap::from([(node, 0)]);
        let mut count = 0u64;
        // Records of the current level, in discovery order. A node at
        // depth d is expanded iff d < hops; the query node always is.
        let mut level = vec![start];
        let mut depth = 0u32;
        while !level.is_empty() && (depth == 0 || depth < hops) {
            let next_depth = depth + 1;
            let mut frontier: Vec<NodeId> = Vec::new();
            for rec in &level {
                for w in rec.all_neighbors() {
                    if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                        e.insert(next_depth);
                        frontier.push(w);
                    }
                }
            }
            let records = self.store.fetch_many(&frontier);
            let mut next = Vec::new();
            for rec in records {
                let labeled_ok = match (label, &rec) {
                    (None, _) => true,
                    (Some(l), Some(r)) => r.node_label == Some(l),
                    (Some(_), None) => false,
                };
                count += u64::from(labeled_ok);
                if next_depth < hops {
                    if let Some(r) = rec {
                        next.push(r);
                    }
                }
            }
            level = next;
            depth = next_depth;
        }
        QueryResult::Count(count)
    }

    /// h-step random walk with restart over out-edges (falling back to the
    /// bi-directed view at sink nodes so walks don't die).
    fn random_walk(
        &mut self,
        node: NodeId,
        steps: u32,
        restart_prob: f64,
        seed: u64,
    ) -> QueryResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut current = node;
        let mut visited: HashSet<NodeId> = HashSet::new();
        visited.insert(node);
        for _ in 0..steps {
            if rng.gen::<f64>() < restart_prob {
                current = node;
                continue;
            }
            let Some(rec) = self.store.fetch(current) else {
                break;
            };
            let next = if !rec.out.is_empty() {
                rec.out[rng.gen_range(0..rec.out.len())]
            } else if !rec.inc.is_empty() {
                rec.inc[rng.gen_range(0..rec.inc.len())]
            } else {
                node // Isolated: restart.
            };
            current = next;
            visited.insert(current);
        }
        QueryResult::Walk {
            end: current,
            visited: visited.len() as u64,
        }
    }

    /// Bidirectional BFS: forward over out-edges from the source, backward
    /// over in-edges from the target, expanding the smaller frontier first.
    ///
    /// With `via_label`, intermediate nodes must carry that label (the
    /// endpoints are exempt) — the §2.2 label-constrained variant. The
    /// constraint is enforced at *expansion* time: a node lacking the label
    /// may be discovered (it could be the meeting endpoint) but its record
    /// is never expanded, and a frontier meeting at an unlabelled
    /// intermediate node does not count.
    fn reachability(
        &mut self,
        source: NodeId,
        target: NodeId,
        hops: u32,
        via_label: Option<grouting_graph::NodeLabelId>,
    ) -> QueryResult {
        if source == target {
            return QueryResult::Reachable(true);
        }
        if hops == 0 {
            return QueryResult::Reachable(false);
        }
        let mut fwd: HashMap<NodeId, u32> = HashMap::from([(source, 0)]);
        let mut bwd: HashMap<NodeId, u32> = HashMap::from([(target, 0)]);
        let mut fq: VecDeque<NodeId> = VecDeque::from([source]);
        let mut bq: VecDeque<NodeId> = VecDeque::from([target]);
        let fwd_budget = hops / 2 + hops % 2;
        let bwd_budget = hops / 2;

        // Expand each frontier level by level; meet-in-the-middle check on
        // every discovery.
        loop {
            let expand_fwd = match (fq.front(), bq.front()) {
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
                (Some(_), Some(_)) => fq.len() <= bq.len(),
            };
            let (queue, dist, other, budget, forward) = if expand_fwd {
                (&mut fq, &mut fwd, &bwd, fwd_budget, true)
            } else {
                (&mut bq, &mut bwd, &fwd, bwd_budget, false)
            };
            let Some(v) = queue.pop_front() else {
                continue;
            };
            let dv = dist[&v];
            if dv >= budget {
                continue;
            }
            let Some(rec) = self.store.fetch(v) else {
                continue;
            };
            // An intermediate node (anything but the endpoints) may only be
            // expanded if it satisfies the label constraint.
            if v != source && v != target {
                if let Some(l) = via_label {
                    if rec.node_label != Some(l) {
                        continue;
                    }
                }
            }
            let next: Vec<NodeId> = if forward {
                rec.out.clone()
            } else {
                rec.inc.clone()
            };
            for w in next {
                if let Some(&dw) = other.get(&w) {
                    if dv + 1 + dw <= hops && self.meeting_ok(w, source, target, via_label) {
                        return QueryResult::Reachable(true);
                    }
                }
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                    e.insert(dv + 1);
                    queue.push_back(w);
                }
            }
        }
        QueryResult::Reachable(false)
    }

    /// Whether the frontiers may legally meet at `w`: endpoints always; an
    /// intermediate node only when it carries the required label.
    fn meeting_ok(
        &mut self,
        w: NodeId,
        source: NodeId,
        target: NodeId,
        via_label: Option<grouting_graph::NodeLabelId>,
    ) -> bool {
        if w == source || w == target {
            return true;
        }
        match via_label {
            None => true,
            Some(l) => self
                .store
                .fetch(w)
                .is_some_and(|rec| rec.node_label == Some(l)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_cache::{LruCache, NullCache};
    use grouting_graph::traversal::{h_hop_neighborhood, hop_distance, Direction};
    use grouting_graph::{CsrGraph, GraphBuilder, NodeLabelId};
    use grouting_partition::HashPartitioner;
    use grouting_storage::StorageTier;
    use std::sync::Arc;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn setup(g: &CsrGraph) -> StorageTier {
        let tier = StorageTier::new(Arc::new(HashPartitioner::new(3)));
        tier.load_graph(g).unwrap();
        tier
    }

    fn path_with_chord() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_edge(n(i), n(i + 1));
        }
        b.add_edge(n(0), n(3));
        b.build().unwrap()
    }

    fn fresh_cache() -> ProcessorCache {
        Box::new(LruCache::new(1 << 20))
    }

    #[test]
    fn aggregation_matches_ground_truth() {
        let g = path_with_chord();
        let tier = setup(&g);
        for v in g.nodes() {
            for h in 1..=3u32 {
                let mut cache = fresh_cache();
                let mut ex = Executor::new(&tier, &mut cache);
                let out = ex.run(&Query::NeighborAggregation {
                    node: v,
                    hops: h,
                    label: None,
                });
                let truth = h_hop_neighborhood(&g, v, h, Direction::Both).len() as u64;
                assert_eq!(out.result, QueryResult::Count(truth), "node {v} h {h}");
            }
        }
    }

    #[test]
    fn aggregation_counts_accesses_per_eq8() {
        let g = path_with_chord();
        let tier = setup(&g);
        let mut cache = fresh_cache();
        let mut ex = Executor::new(&tier, &mut cache);
        let out = ex.run(&Query::NeighborAggregation {
            node: n(0),
            hops: 2,
            label: None,
        });
        // |N_2(0)| = {1, 3, 2, 4} = 4 neighbours + the query node itself.
        assert_eq!(out.result, QueryResult::Count(4));
        assert_eq!(out.stats.accesses(), 5);
        // Cold cache: every access missed.
        assert_eq!(out.stats.cache_misses, 5);
    }

    #[test]
    fn repeated_query_hits_cache() {
        let g = path_with_chord();
        let tier = setup(&g);
        let mut cache = fresh_cache();
        let q = Query::NeighborAggregation {
            node: n(0),
            hops: 2,
            label: None,
        };
        let mut ex = Executor::new(&tier, &mut cache);
        let first = ex.run(&q);
        let second = ex.run(&q);
        assert_eq!(first.result, second.result);
        assert_eq!(second.stats.cache_misses, 0);
        assert_eq!(second.stats.cache_hits, first.stats.cache_misses);
    }

    #[test]
    fn labeled_aggregation_filters() {
        let mut b = GraphBuilder::new();
        b.add_edge(n(0), n(1));
        b.add_edge(n(0), n(2));
        b.set_node_label(n(1), NodeLabelId::new(7));
        b.set_node_label(n(2), NodeLabelId::new(9));
        let g = b.build().unwrap();
        let tier = setup(&g);
        let mut cache = fresh_cache();
        let mut ex = Executor::new(&tier, &mut cache);
        let out = ex.run(&Query::NeighborAggregation {
            node: n(0),
            hops: 1,
            label: Some(NodeLabelId::new(7)),
        });
        assert_eq!(out.result, QueryResult::Count(1));
    }

    #[test]
    fn reachability_matches_ground_truth() {
        let g = path_with_chord();
        let tier = setup(&g);
        for s in g.nodes() {
            for t in g.nodes() {
                for h in 0..=4u32 {
                    let mut cache = fresh_cache();
                    let mut ex = Executor::new(&tier, &mut cache);
                    let out = ex.run(&Query::Reachability {
                        source: s,
                        target: t,
                        hops: h,
                    });
                    let truth = match hop_distance(&g, s, t, Direction::Out) {
                        Some(d) => d <= h,
                        None => false,
                    };
                    assert_eq!(
                        out.result,
                        QueryResult::Reachable(truth),
                        "{s}->{t} within {h}"
                    );
                }
            }
        }
    }

    #[test]
    fn random_walk_is_deterministic_and_bounded() {
        let g = path_with_chord();
        let tier = setup(&g);
        let q = Query::RandomWalk {
            node: n(0),
            steps: 16,
            restart_prob: 0.15,
            seed: 99,
        };
        let mut c1 = fresh_cache();
        let r1 = Executor::new(&tier, &mut c1).run(&q);
        let mut c2 = fresh_cache();
        let r2 = Executor::new(&tier, &mut c2).run(&q);
        assert_eq!(r1.result, r2.result);
        if let QueryResult::Walk { visited, .. } = r1.result {
            assert!((1..=5).contains(&visited));
        } else {
            panic!("wrong result kind");
        }
    }

    #[test]
    fn no_cache_mode_misses_everything() {
        let g = path_with_chord();
        let tier = setup(&g);
        let mut cache: ProcessorCache = Box::new(NullCache::new());
        let q = Query::NeighborAggregation {
            node: n(0),
            hops: 2,
            label: None,
        };
        let mut ex = Executor::new(&tier, &mut cache);
        let a = ex.run(&q);
        let b = ex.run(&q);
        assert_eq!(a.stats.cache_hits, 0);
        assert_eq!(b.stats.cache_hits, 0);
        assert_eq!(b.stats.cache_misses, a.stats.cache_misses);
    }

    #[test]
    fn constrained_reachability_respects_labels() {
        // 0 -> 1 -> 3 and 0 -> 2 -> 3; only node 1 carries the label.
        let mut b = GraphBuilder::new();
        b.add_edge(n(0), n(1));
        b.add_edge(n(1), n(3));
        b.add_edge(n(0), n(2));
        b.add_edge(n(2), n(3));
        b.set_node_label(n(1), NodeLabelId::new(5));
        b.set_node_label(n(2), NodeLabelId::new(9));
        let g = b.build().unwrap();
        let tier = setup(&g);
        let mut cache = fresh_cache();
        let mut ex = Executor::new(&tier, &mut cache);
        // Path through label-5 node exists.
        let ok = ex.run(&Query::ConstrainedReachability {
            source: n(0),
            target: n(3),
            hops: 2,
            via_label: NodeLabelId::new(5),
        });
        assert_eq!(ok.result, QueryResult::Reachable(true));
        // No path whose intermediates all carry label 7.
        let blocked = ex.run(&Query::ConstrainedReachability {
            source: n(0),
            target: n(3),
            hops: 2,
            via_label: NodeLabelId::new(7),
        });
        assert_eq!(blocked.result, QueryResult::Reachable(false));
        // Direct edges need no intermediates: source -> 1 within 1 hop holds
        // under any label constraint.
        let direct = ex.run(&Query::ConstrainedReachability {
            source: n(0),
            target: n(1),
            hops: 1,
            via_label: NodeLabelId::new(7),
        });
        assert_eq!(direct.result, QueryResult::Reachable(true));
    }

    #[test]
    fn constrained_reachability_long_chain() {
        // 0 -> 1 -> 2 -> 3 -> 4, all intermediates labelled 2 except node 2.
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_edge(n(i), n(i + 1));
        }
        for i in [1u32, 3] {
            b.set_node_label(n(i), NodeLabelId::new(2));
        }
        b.set_node_label(n(2), NodeLabelId::new(8));
        let g = b.build().unwrap();
        let tier = setup(&g);
        let mut cache = fresh_cache();
        let mut ex = Executor::new(&tier, &mut cache);
        // Node 2 breaks the label-2 chain.
        let r = ex.run(&Query::ConstrainedReachability {
            source: n(0),
            target: n(4),
            hops: 4,
            via_label: NodeLabelId::new(2),
        });
        assert_eq!(r.result, QueryResult::Reachable(false));
        // But the unconstrained query succeeds.
        let r2 = ex.run(&Query::Reachability {
            source: n(0),
            target: n(4),
            hops: 4,
        });
        assert_eq!(r2.result, QueryResult::Reachable(true));
    }

    #[test]
    fn missing_query_node_yields_empty_results() {
        let g = path_with_chord();
        let tier = setup(&g);
        let mut cache = fresh_cache();
        let mut ex = Executor::new(&tier, &mut cache);
        let out = ex.run(&Query::NeighborAggregation {
            node: n(77),
            hops: 2,
            label: None,
        });
        assert_eq!(out.result, QueryResult::Count(0));
    }

    proptest::proptest! {
        /// Distributed aggregation equals whole-graph BFS on random graphs.
        #[test]
        fn prop_aggregation_matches_bfs(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 1..80),
            src in 0u32..20,
            h in 1u32..4,
        ) {
            let mut b = GraphBuilder::with_nodes(20);
            for (s, d) in &edges {
                b.add_edge(n(*s), n(*d));
            }
            let g = b.build().unwrap();
            let tier = setup(&g);
            let mut cache = fresh_cache();
            let mut ex = Executor::new(&tier, &mut cache);
            let out = ex.run(&Query::NeighborAggregation { node: n(src), hops: h, label: None });
            let truth = h_hop_neighborhood(&g, n(src), h, Direction::Both).len() as u64;
            proptest::prop_assert_eq!(out.result, QueryResult::Count(truth));
        }

        /// Distributed reachability equals whole-graph bidirectional BFS.
        #[test]
        fn prop_reachability_matches(
            edges in proptest::collection::vec((0u32..16, 0u32..16), 1..60),
            s in 0u32..16,
            t in 0u32..16,
            h in 0u32..5,
        ) {
            let mut b = GraphBuilder::with_nodes(16);
            for (a, d) in &edges {
                b.add_edge(n(*a), n(*d));
            }
            let g = b.build().unwrap();
            let tier = setup(&g);
            let mut cache = fresh_cache();
            let mut ex = Executor::new(&tier, &mut cache);
            let out = ex.run(&Query::Reachability { source: n(s), target: n(t), hops: h });
            let truth = match hop_distance(&g, n(s), n(t), Direction::Out) {
                Some(d) => d <= h,
                None => false,
            };
            proptest::prop_assert_eq!(out.result, QueryResult::Reachable(truth));
        }
    }
}
