//! Approximate path-pattern matching on top of h-hop traversal.
//!
//! §2.2: the reachability query "can be employed in distance-constrained
//! and label-constrained reachability search, as well as in approximate
//! graph pattern matching queries [15]". This module provides that last
//! layer: a *path pattern* is a sequence of node labels, and a match is a
//! path from an anchor whose i-th node carries the i-th label. ("Find all
//! papers on distributed graph systems co-authored by Berkeley and CMU
//! researchers" decomposes into such label paths.)
//!
//! Evaluation runs over the same cache-backed fetch layer as every other
//! query, so pattern matching benefits from smart routing exactly like the
//! primitive queries do.

use std::collections::HashSet;

use grouting_graph::{NodeId, NodeLabelId};

use crate::executor::Executor;

/// A node-label path pattern, matched from an anchor node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathPattern {
    /// Labels the successive path nodes must carry (the anchor itself is
    /// not constrained).
    pub steps: Vec<NodeLabelId>,
    /// Follow only out-edges (`false` = bi-directed, the default for
    /// knowledge-graph patterns where inverse relations are materialised).
    pub directed: bool,
}

impl PathPattern {
    /// A bi-directed pattern over the given label steps.
    pub fn new(steps: Vec<NodeLabelId>) -> Self {
        Self {
            steps,
            directed: false,
        }
    }

    /// Restricts matching to out-edges.
    pub fn directed(mut self) -> Self {
        self.directed = true;
        self
    }

    /// Pattern length in hops.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the pattern is empty (matches trivially).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// The result of matching a pattern: every node at which the path can end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternMatch {
    /// Nodes reachable from the anchor along a label-conforming path,
    /// sorted by id.
    pub endpoints: Vec<NodeId>,
}

impl PatternMatch {
    /// Whether at least one conforming path exists.
    pub fn matched(&self) -> bool {
        !self.endpoints.is_empty()
    }
}

/// Matches `pattern` from `anchor` by levelwise label-filtered expansion.
///
/// Each frontier node's record is fetched through the processor cache, so
/// the access accounting (Eq. 8/9) covers pattern queries too.
pub fn match_pattern<S: crate::fetch::RecordSource>(
    executor: &mut Executor<'_, S>,
    anchor: NodeId,
    pattern: &PathPattern,
) -> PatternMatch {
    let mut frontier: HashSet<NodeId> = HashSet::from([anchor]);
    for &label in &pattern.steps {
        let mut next = HashSet::new();
        for v in frontier {
            let Some(rec) = executor.fetch_record(v) else {
                continue;
            };
            let candidates: Vec<NodeId> = if pattern.directed {
                rec.out.clone()
            } else {
                rec.all_neighbors().collect()
            };
            for w in candidates {
                if next.contains(&w) {
                    continue;
                }
                if let Some(wrec) = executor.fetch_record(w) {
                    if wrec.node_label == Some(label) {
                        next.insert(w);
                    }
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    let mut endpoints: Vec<NodeId> = frontier.into_iter().collect();
    endpoints.sort_unstable();
    PatternMatch { endpoints }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetch::ProcessorCache;
    use grouting_cache::LruCache;
    use grouting_graph::{GraphBuilder, NodeLabelId};
    use grouting_partition::HashPartitioner;
    use grouting_storage::StorageTier;
    use std::sync::Arc;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn l(i: u16) -> NodeLabelId {
        NodeLabelId::new(i)
    }

    /// A tiny "academic" graph: paper(0) -- author(1,2) -- org(3,4).
    fn academic() -> StorageTier {
        let mut b = GraphBuilder::new();
        b.add_edge(n(1), n(0)); // author 1 wrote paper 0
        b.add_edge(n(2), n(0)); // author 2 wrote paper 0
        b.add_edge(n(1), n(3)); // author 1 at org 3
        b.add_edge(n(2), n(4)); // author 2 at org 4
        b.set_node_label(n(0), l(10)); // paper
        b.set_node_label(n(1), l(20)); // author
        b.set_node_label(n(2), l(20)); // author
        b.set_node_label(n(3), l(30)); // org
        b.set_node_label(n(4), l(30)); // org
        let g = b.build().unwrap();
        let tier = StorageTier::new(Arc::new(HashPartitioner::new(2)));
        tier.load_graph(&g).unwrap();
        tier
    }

    fn run(tier: &StorageTier, anchor: NodeId, pattern: &PathPattern) -> PatternMatch {
        let mut cache: ProcessorCache = Box::new(LruCache::new(1 << 20));
        let mut ex = Executor::new(tier, &mut cache);
        match_pattern(&mut ex, anchor, pattern)
    }

    #[test]
    fn paper_to_orgs_via_authors() {
        let tier = academic();
        // paper -> author -> org.
        let m = run(&tier, n(0), &PathPattern::new(vec![l(20), l(30)]));
        assert!(m.matched());
        assert_eq!(m.endpoints, vec![n(3), n(4)]);
    }

    #[test]
    fn wrong_label_breaks_the_path() {
        let tier = academic();
        // paper -> org directly: no such edge pattern.
        let m = run(&tier, n(0), &PathPattern::new(vec![l(30)]));
        assert!(!m.matched());
        // paper -> author -> paper: back to the start.
        let m2 = run(&tier, n(0), &PathPattern::new(vec![l(20), l(10)]));
        assert_eq!(m2.endpoints, vec![n(0)]);
    }

    #[test]
    fn directed_patterns_respect_orientation() {
        let tier = academic();
        // Out-edges only: paper 0 has none, so nothing matches.
        let m = run(&tier, n(0), &PathPattern::new(vec![l(20)]).directed());
        assert!(!m.matched());
        // From the author side the direction works: author -> org.
        let m2 = run(&tier, n(1), &PathPattern::new(vec![l(30)]).directed());
        assert_eq!(m2.endpoints, vec![n(3)]);
    }

    #[test]
    fn empty_pattern_matches_anchor() {
        let tier = academic();
        let p = PathPattern::new(vec![]);
        assert!(p.is_empty());
        let m = run(&tier, n(0), &p);
        assert_eq!(m.endpoints, vec![n(0)]);
    }

    #[test]
    fn pattern_accounting_flows_through_cache() {
        let tier = academic();
        let mut cache: ProcessorCache = Box::new(LruCache::new(1 << 20));
        let mut ex = Executor::new(&tier, &mut cache);
        let p = PathPattern::new(vec![l(20), l(30)]);
        let _ = match_pattern(&mut ex, n(0), &p);
        let first = ex.stats();
        assert!(first.cache_misses > 0);
        let _ = match_pattern(&mut ex, n(0), &p);
        let second = ex.stats();
        // The rerun is served from cache.
        assert_eq!(second.cache_misses, first.cache_misses);
        assert!(second.cache_hits > first.cache_hits);
    }
}
