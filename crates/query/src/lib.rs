//! h-hop traversal queries and their executors (§2.2).
//!
//! The paper generalises online graph queries to *h-hop traversals* from a
//! query node and evaluates three of them:
//!
//! 1. **h-hop neighbour aggregation** — count the h-hop neighbours of the
//!    query node (optionally only those carrying a given label);
//! 2. **h-step random walk with restart** — jump to a uniform neighbour per
//!    step, restarting at the query node with small probability;
//! 3. **h-hop reachability** — bidirectional BFS (forward from the source
//!    over out-edges, backward from the target over in-edges — possible
//!    because both directions are stored).
//!
//! Execution runs against [`fetch::CacheBackedStore`] — the cache-then-
//! storage fetch layer whose hit/miss counts *are* the paper's Eq. 8/9
//! metrics and whose per-query access statistics the runtimes turn into
//! simulated (or real) time.

pub mod executor;
pub mod fetch;
pub mod patterns;
pub mod prefetch;
pub mod types;

pub use executor::{ExecOutcome, Executor, StagedQuery, Step};
pub use fetch::{
    AccessStats, BatchSource, CacheBackedStore, MissEvent, ProcessorCache, RecordSource,
};
pub use patterns::{match_pattern, PathPattern, PatternMatch};
pub use prefetch::{
    DegreePrefetcher, HotspotPrefetcher, PrefetchConfig, PrefetchPolicy, PrefetchState,
    PrefetchStats, Prefetcher,
};
pub use types::{Query, QueryResult};
