//! The discrete-event loop.
//!
//! A closed-loop, acknowledgement-driven simulation of Figure 2's cluster:
//!
//! * queries are *admitted* into the router's queues through a bounded
//!   window (modelling the online arrival stream — routing decisions see
//!   realistic queue lengths and fresh EMA state);
//! * an idle processor asks the router for work (own queue → global queue →
//!   steal), executes the query **for real** against its cache and the
//!   storage tier, and completes after the virtual time its accesses cost;
//! * each storage get occupies the owning server FCFS
//!   (`storage_service_ns`), so under-provisioned storage tiers become the
//!   bottleneck exactly as in Figure 8(c);
//! * completion acks the router, which dispatches the next query.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use grouting_engine::Engine;
use grouting_metrics::timeline::QueryRecord;
use grouting_query::Query;

use crate::assets::SimAssets;
use crate::config::SimConfig;
use crate::report::SimReport;

/// Runs one simulated cluster over the query stream.
///
/// The whole stack — router, strategy, per-processor caches, storage-tier
/// handles, timeline — is assembled by the shared [`Engine`] builder (the
/// same one the live runtime drives); this loop only owns *virtual time*.
///
/// # Panics
///
/// Panics if `cfg.processors == 0`.
pub fn simulate(assets: &SimAssets, queries: &[Query], cfg: &SimConfig) -> SimReport {
    let p = cfg.processors;
    let mut engine = Engine::new(&assets.engine_assets(), &cfg.engine_config());
    let mut workers = engine.take_workers();

    let mut backlog = queries.iter().copied().enumerate();
    let mut arrivals: Vec<u64> = vec![0; queries.len()];

    // Storage servers as fluid queues: each holds a work backlog that
    // drains in real time and grows by `storage_service_ns` per get. A get
    // issued at time `t` waits for the backlog present at `t`. This lets
    // concurrent queries' gets interleave (as they do on a real server)
    // while still saturating when aggregate demand exceeds a server's
    // capacity — the Figure 8(c) bottleneck.
    let mut server_backlog = vec![0u64; assets.tier.server_count()];
    let mut server_seen = vec![0u64; assets.tier.server_count()];
    let mut makespan = 0u64;

    // Completion events: (time, processor).
    let mut completions: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    // Idle processors with the time they became ready.
    let mut idle: Vec<(u64, usize)> = (0..p).map(|proc| (0u64, proc)).collect();

    let cost = cfg.cost;
    let uses_cache = cfg.routing.uses_cache();

    loop {
        // Keep the admission window full at the current frontier time.
        let now_floor = idle.iter().map(|&(t, _)| t).min().unwrap_or(0);
        engine.admit(&mut backlog, |seq| arrivals[seq] = now_floor);

        // Dispatch to idle processors, earliest-ready first.
        idle.sort_unstable();
        let mut still_idle = Vec::new();
        for (ready_at, proc) in idle.drain(..) {
            match engine.next_for(proc) {
                Some((seq, query)) => {
                    let started = ready_at + cost.router_decision_ns;
                    // Execute for real; then charge virtual time.
                    let (out, miss_log) = workers[proc].run(&query);

                    let mut t = started;
                    for m in &miss_log {
                        let s = m.server as usize;
                        // Drain the backlog for the time that passed since
                        // this server was last observed.
                        let drained = t.saturating_sub(server_seen[s]);
                        server_backlog[s] = server_backlog[s].saturating_sub(drained);
                        server_seen[s] = server_seen[s].max(t);
                        let wait = server_backlog[s];
                        server_backlog[s] += cost.storage_service_ns;
                        t += wait
                            + cost.storage_service_ns
                            + cost.network.fetch_ns(m.bytes as usize);
                    }
                    let accesses = out.stats.accesses();
                    if uses_cache {
                        t += accesses * cost.cache_probe_ns;
                        t += out.stats.cache_misses * cost.cache_insert_ns;
                    }
                    t += accesses * cost.compute_per_node_ns;

                    engine.complete(
                        QueryRecord {
                            seq,
                            arrived: arrivals[seq as usize],
                            started,
                            completed: t,
                            processor: proc,
                        },
                        &out.stats,
                    );
                    makespan = makespan.max(t);
                    completions.push(Reverse((t + cost.ack_ns, proc)));
                }
                None => still_idle.push((ready_at, proc)),
            }
        }
        idle = still_idle;

        // Advance to the next completion; when none remain, the run is
        // finished (or wedged with undispatchable work, which we surface by
        // simply stopping).
        match completions.pop() {
            Some(Reverse((t, proc))) => idle.push((t, proc)),
            None => break,
        }
    }

    let storage_gets = (0..assets.tier.server_count())
        .map(|s| assets.tier.server(s).gets_served())
        .collect();

    let run = engine.finish();
    SimReport {
        timeline: run.timeline,
        cache_hits: run.totals.cache_hits,
        cache_misses: run.totals.cache_misses,
        evictions: run.totals.evictions,
        stolen: run.stolen,
        makespan_ns: makespan,
        storage_gets,
        processors: p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_route::RoutingKind;
    use grouting_workload::{hotspot_workload, WorkloadConfig};
    use std::sync::Arc;

    fn small_world(n: usize) -> Arc<grouting_graph::CsrGraph> {
        // A ring with chords: strong topology-aware locality.
        let mut b = grouting_graph::GraphBuilder::new();
        let k = n as u32;
        for i in 0..k {
            b.add_edge(
                grouting_graph::NodeId::new(i),
                grouting_graph::NodeId::new((i + 1) % k),
            );
            b.add_edge(
                grouting_graph::NodeId::new(i),
                grouting_graph::NodeId::new((i + 2) % k),
            );
        }
        Arc::new(b.build().unwrap())
    }

    fn assets(n: usize) -> SimAssets {
        SimAssets::build(
            small_world(n),
            4,
            &grouting_embed::landmarks::LandmarkConfig {
                count: 8,
                min_separation: (n / 8).max(2) as u32,
            },
            &grouting_embed::EmbeddingConfig {
                dimensions: 5,
                landmark_sweeps: 1,
                landmark_iters: 150,
                node_iters: 50,
                nearest_landmarks: 8,
                seed: 2,
            },
        )
    }

    fn workload(assets: &SimAssets, seed: u64) -> Vec<grouting_query::Query> {
        hotspot_workload(
            &assets.graph,
            &WorkloadConfig {
                hotspots: 20,
                per_hotspot: 8,
                radius: 2,
                hops: 2,
                mix: grouting_workload::QueryMix::uniform(),
                restart_prob: 0.15,
                seed,
            },
        )
        .queries
    }

    #[test]
    fn all_queries_complete() {
        let a = assets(128);
        let q = workload(&a, 1);
        let cfg = SimConfig {
            cache_capacity: 1 << 20,
            ..SimConfig::paper_default(4, RoutingKind::Hash)
        };
        let r = simulate(&a, &q, &cfg);
        assert_eq!(r.timeline.len(), q.len());
        assert!(r.makespan_ns > 0);
        assert!(r.throughput_qps() > 0.0);
    }

    #[test]
    fn deterministic_runs() {
        let a = assets(96);
        let q = workload(&a, 2);
        let cfg = SimConfig {
            cache_capacity: 1 << 20,
            ..SimConfig::paper_default(3, RoutingKind::Embed)
        };
        let r1 = simulate(&a.with_storage_servers(4), &q, &cfg);
        let r2 = simulate(&a.with_storage_servers(4), &q, &cfg);
        assert_eq!(r1.makespan_ns, r2.makespan_ns);
        assert_eq!(r1.cache_hits, r2.cache_hits);
        assert_eq!(r1.stolen, r2.stolen);
    }

    #[test]
    fn no_cache_never_hits() {
        let a = assets(96);
        let q = workload(&a, 3);
        let cfg = SimConfig {
            cache_capacity: 1 << 20,
            ..SimConfig::paper_default(4, RoutingKind::NoCache)
        };
        let r = simulate(&a, &q, &cfg);
        assert_eq!(r.cache_hits, 0);
        assert!(r.cache_misses > 0);
    }

    #[test]
    fn smart_routing_beats_next_ready_on_cache_hits() {
        let a = assets(256);
        let q = workload(&a, 4);
        let base = SimConfig {
            cache_capacity: 4 << 20,
            ..SimConfig::paper_default(4, RoutingKind::NextReady)
        };
        let r_next = simulate(&a.with_storage_servers(4), &q, &base);
        let r_embed = simulate(
            &a.with_storage_servers(4),
            &q,
            &SimConfig {
                routing: RoutingKind::Embed,
                ..base
            },
        );
        let r_landmark = simulate(
            &a.with_storage_servers(4),
            &q,
            &SimConfig {
                routing: RoutingKind::Landmark,
                ..base
            },
        );
        assert!(
            r_embed.hit_rate() > r_next.hit_rate(),
            "embed {} vs next-ready {}",
            r_embed.hit_rate(),
            r_next.hit_rate()
        );
        assert!(
            r_landmark.hit_rate() > r_next.hit_rate(),
            "landmark {} vs next-ready {}",
            r_landmark.hit_rate(),
            r_next.hit_rate()
        );
    }

    #[test]
    fn stealing_keeps_load_balanced_under_hash_skew() {
        let a = assets(96);
        // All queries anchored at node 0: hash pins them to one processor.
        let q: Vec<grouting_query::Query> = (0..40)
            .map(|_| grouting_query::Query::NeighborAggregation {
                node: grouting_graph::NodeId::new(0),
                hops: 1,
                label: None,
            })
            .collect();
        let cfg = SimConfig {
            cache_capacity: 1 << 20,
            ..SimConfig::paper_default(4, RoutingKind::Hash)
        };
        let with_steal = simulate(&a.with_storage_servers(4), &q, &cfg);
        let without = simulate(
            &a.with_storage_servers(4),
            &q,
            &SimConfig {
                stealing: false,
                ..cfg
            },
        );
        assert!(with_steal.stolen > 0);
        assert!(with_steal.load_imbalance() < without.load_imbalance());
        assert!(with_steal.makespan_ns <= without.makespan_ns);
    }

    #[test]
    fn more_storage_servers_do_not_slow_the_run() {
        let a = assets(128);
        let q = workload(&a, 5);
        let cfg = SimConfig {
            cache_capacity: 1 << 20,
            ..SimConfig::paper_default(4, RoutingKind::NoCache)
        };
        let one = simulate(&a.with_storage_servers(1), &q, &cfg);
        let four = simulate(&a.with_storage_servers(4), &q, &cfg);
        assert!(
            four.makespan_ns <= one.makespan_ns,
            "4 servers {} vs 1 server {}",
            four.makespan_ns,
            one.makespan_ns
        );
    }

    #[test]
    fn storage_gets_accounted() {
        let a = assets(96);
        let q = workload(&a, 6);
        let cfg = SimConfig {
            cache_capacity: 1 << 20,
            ..SimConfig::paper_default(2, RoutingKind::Hash)
        };
        let r = simulate(&a, &q, &cfg);
        let total: u64 = r.storage_gets.iter().sum();
        assert_eq!(total, r.cache_misses);
    }
}
