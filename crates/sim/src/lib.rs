//! Deterministic discrete-event simulator of the decoupled cluster.
//!
//! This is the substrate standing in for the paper's 12-server testbed (see
//! DESIGN.md §1). The simulation runs the *real* gRouting logic — the actual
//! router, caches, and query executors operate on actual graph data — and
//! only *time* is simulated: every cache probe, storage get, network
//! transfer, and per-record computation charges virtual nanoseconds from an
//! explicit [`CostModel`]. Because the counts are real and the constants
//! explicit, the relative shapes the paper reports (which routing wins, how
//! throughput scales with processors, where cache-size break-evens fall)
//! reproduce without any wall-clock noise, and every run is deterministic.
//!
//! * [`assets`] — preprocessing bundle shared across simulations (graph,
//!   loaded storage tier, landmarks, embedding);
//! * [`config`] — cluster shape + cost model;
//! * [`runner`] — the event loop (ack-driven closed loop with a bounded
//!   admission window, per-server FCFS storage contention);
//! * [`report`] — the measurements each run produces.

pub mod assets;
pub mod config;
pub mod report;
pub mod runner;

pub use assets::SimAssets;
pub use config::{CostModel, SimConfig};
pub use report::SimReport;
pub use runner::simulate;
