//! Measurements produced by one simulated run.

use grouting_metrics::{Histogram, Timeline};

/// Everything a single cluster run measures — the inputs to every figure.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-query lifecycle records.
    pub timeline: Timeline,
    /// Total cache hits across processors (Eq. 8).
    pub cache_hits: u64,
    /// Total cache misses across processors (Eq. 9).
    pub cache_misses: u64,
    /// Cache evictions observed.
    pub evictions: u64,
    /// Queries stolen by idle processors.
    pub stolen: u64,
    /// Virtual makespan of the whole run in nanoseconds.
    pub makespan_ns: u64,
    /// Gets served per storage server.
    pub storage_gets: Vec<u64>,
    /// Processors the run was configured with.
    pub processors: usize,
}

impl SimReport {
    /// Mean per-query response time (service time, as the paper reports) in
    /// milliseconds.
    pub fn mean_response_ms(&self) -> f64 {
        let mut h = Histogram::new();
        for r in self.timeline.records() {
            h.record(r.service());
        }
        h.mean().unwrap_or(0.0) / 1e6
    }

    /// Query throughput in queries/second over the virtual makespan.
    pub fn throughput_qps(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        self.timeline.len() as f64 / (self.makespan_ns as f64 / 1e9)
    }

    /// Cache hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Coefficient of variation of per-processor query counts.
    pub fn load_imbalance(&self) -> f64 {
        self.timeline.load_imbalance(self.processors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_metrics::timeline::QueryRecord;

    fn report() -> SimReport {
        let mut t = Timeline::new();
        t.push(QueryRecord {
            seq: 0,
            arrived: 0,
            started: 0,
            completed: 10_000_000,
            processor: 0,
        });
        t.push(QueryRecord {
            seq: 1,
            arrived: 0,
            started: 10_000_000,
            completed: 40_000_000,
            processor: 1,
        });
        SimReport {
            timeline: t,
            cache_hits: 30,
            cache_misses: 10,
            evictions: 2,
            stolen: 1,
            makespan_ns: 40_000_000,
            storage_gets: vec![6, 4],
            processors: 2,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert!((r.mean_response_ms() - 20.0).abs() < 1e-9);
        assert!((r.throughput_qps() - 50.0).abs() < 1e-9);
        assert!((r.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(r.load_imbalance(), 0.0);
    }

    #[test]
    fn empty_report_is_zeroes() {
        let r = SimReport {
            timeline: Timeline::new(),
            cache_hits: 0,
            cache_misses: 0,
            evictions: 0,
            stolen: 0,
            makespan_ns: 0,
            storage_gets: vec![],
            processors: 1,
        };
        assert_eq!(r.mean_response_ms(), 0.0);
        assert_eq!(r.throughput_qps(), 0.0);
        assert_eq!(r.hit_rate(), 0.0);
    }
}
