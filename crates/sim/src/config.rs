//! Simulation configuration: cluster shape and the virtual-time cost model.

use grouting_cache::Policy;
use grouting_route::RoutingKind;
use grouting_storage::NetworkModel;

/// Virtual-time charges for every operation the cluster performs.
///
/// Defaults are calibrated to the paper's testbed: RAMCloud gets take
/// 5–10 µs over Infiniband RDMA (§4.1), per-node processing is on the order
/// of a microsecond (52 K-node 2-hop neighbourhoods answer in tens of
/// milliseconds, 367 K-node 3-hop ones in hundreds), and routing decisions
/// are sub-microsecond (O(P) table lookups).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Network between processing and storage tiers.
    pub network: NetworkModel,
    /// Storage-server occupancy per get (serialises gets on one server).
    pub storage_service_ns: u64,
    /// Processor-side cache probe (charged per access when a cache exists).
    pub cache_probe_ns: u64,
    /// Cache maintenance on each miss-side insert (allocation, hash-map
    /// churn, eviction bookkeeping). This is the overhead that makes a
    /// too-small cache *worse* than no cache at all (Figure 9).
    pub cache_insert_ns: u64,
    /// Processor-side work per record processed (neighbour iteration,
    /// counting, label checks).
    pub compute_per_node_ns: u64,
    /// Router decision plus dispatch overhead per query.
    pub router_decision_ns: u64,
    /// Acknowledgement path from processor back to router.
    pub ack_ns: u64,
}

impl CostModel {
    /// The paper's default deployment: Infiniband RDMA.
    pub fn infiniband() -> Self {
        Self {
            network: NetworkModel::infiniband_rdma(),
            storage_service_ns: 1_000,
            cache_probe_ns: 150,
            cache_insert_ns: 700,
            compute_per_node_ns: 1_000,
            router_decision_ns: 700,
            ack_ns: 3_000,
        }
    }

    /// The `gRouting-E` deployment: 10 Gbps Ethernet.
    pub fn ethernet() -> Self {
        Self {
            network: NetworkModel::ethernet_10g(),
            ack_ns: 15_000,
            ..Self::infiniband()
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::infiniband()
    }
}

/// One simulated cluster run.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Query processors P.
    pub processors: usize,
    /// Routing scheme.
    pub routing: RoutingKind,
    /// Per-processor cache capacity in bytes (ignored for
    /// [`RoutingKind::NoCache`]).
    pub cache_capacity: usize,
    /// Cache eviction policy (the paper uses LRU).
    pub cache_policy: Policy,
    /// EMA smoothing α for embed routing (paper default 0.5).
    pub alpha: f64,
    /// Load factor for d_LB (paper default 20).
    pub load_factor: f64,
    /// Whether query stealing is enabled.
    pub stealing: bool,
    /// Queries admitted into router queues ahead of dispatch
    /// (0 = `16 × processors`). Models the online arrival stream; the
    /// paper's router queues the entire remaining workload, so a deep
    /// window is the faithful default.
    pub admission_window: usize,
    /// Speculative frontier prefetching (default off). Demand-side cache
    /// statistics — and hence every simulated cost — are byte-identical
    /// whether or not speculation runs; the simulator threads the knob
    /// through so its workers exercise the same code path the deployments
    /// run.
    pub prefetch: grouting_query::PrefetchConfig,
    /// Cost model.
    pub cost: CostModel,
    /// Seed for EMA initialisation.
    pub seed: u64,
}

impl SimConfig {
    /// The paper's standard configuration for `processors` processors and
    /// the chosen routing scheme: 4 GB LRU cache, load factor 20, stealing
    /// on, Infiniband. α defaults to 0.9 — the optimum measured in *this*
    /// implementation's sensitivity sweep (the paper tunes α the same way
    /// and lands at 0.5 on its testbed; see EXPERIMENTS.md, Figure 11(b)).
    pub fn paper_default(processors: usize, routing: RoutingKind) -> Self {
        Self {
            processors,
            routing,
            cache_capacity: 4 << 30,
            cache_policy: Policy::Lru,
            alpha: 0.9,
            load_factor: 20.0,
            stealing: true,
            admission_window: 0,
            prefetch: grouting_query::PrefetchConfig::OFF,
            cost: CostModel::infiniband(),
            seed: 0x5EED,
        }
    }

    /// Effective admission window.
    pub fn window(&self) -> usize {
        self.engine_config().window()
    }

    /// The shared-engine view of this configuration: everything except the
    /// cost model, which is the simulator's own concern.
    pub fn engine_config(&self) -> grouting_engine::EngineConfig {
        grouting_engine::EngineConfig {
            processors: self.processors,
            routing: self.routing,
            cache_capacity: self.cache_capacity,
            cache_policy: self.cache_policy,
            alpha: self.alpha,
            load_factor: self.load_factor,
            stealing: self.stealing,
            admission_window: self.admission_window,
            // The simulator executes one query per processor at a time;
            // fetch overlap is a wire-deployment concern.
            overlap: 1,
            prefetch: self.prefetch,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = CostModel::default();
        assert!(c.network.fetch_ns(64) >= 5_000);
        assert!(c.cache_probe_ns < c.compute_per_node_ns);
        let e = CostModel::ethernet();
        assert!(e.network.fetch_ns(64) > c.network.fetch_ns(64));
    }

    #[test]
    fn paper_default_shape() {
        let cfg = SimConfig::paper_default(7, RoutingKind::Embed);
        assert_eq!(cfg.processors, 7);
        assert_eq!(cfg.window(), 112);
        assert_eq!(cfg.cache_capacity, 4 << 30);
        assert!(cfg.stealing);
        let explicit = SimConfig {
            admission_window: 3,
            ..cfg
        };
        assert_eq!(explicit.window(), 3);
    }
}
