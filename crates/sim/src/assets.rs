//! Shared preprocessing assets for a family of simulations.
//!
//! The expensive inputs — generating the graph, loading the storage tier,
//! landmark BFS, and the embedding — are independent of the cluster shape
//! being simulated, so experiment sweeps build a [`SimAssets`] once and run
//! many configurations against it (exactly how the paper runs one
//! preprocessing pass, then varies processors, cache sizes, α, …).

use std::sync::Arc;

use grouting_embed::embedding::{Embedding, EmbeddingConfig};
use grouting_embed::landmarks::{LandmarkConfig, Landmarks};
use grouting_graph::CsrGraph;
use grouting_partition::HashPartitioner;
use grouting_storage::StorageTier;

/// Everything a simulation needs that is independent of P, caches, and the
/// routing scheme under test.
#[derive(Clone)]
pub struct SimAssets {
    /// The graph (kept for ground-truth checks and workload generation).
    pub graph: Arc<CsrGraph>,
    /// The loaded storage tier (hash partitioning, per the paper).
    pub tier: Arc<StorageTier>,
    /// Landmark set + distance maps.
    pub landmarks: Arc<Landmarks>,
    /// The graph embedding.
    pub embedding: Arc<Embedding>,
    /// Wall-clock preprocessing times, for Table 2.
    pub timings: PreprocessTimings,
}

/// Wall-clock durations of each preprocessing stage (Table 2).
#[derive(Debug, Clone, Copy, Default)]
pub struct PreprocessTimings {
    /// Landmark selection + BFS distance maps.
    pub landmark_ns: u64,
    /// Landmark embedding (Simplex Downhill over landmark pairs).
    pub embed_landmarks_ns: u64,
    /// Per-node embedding (all nodes).
    pub embed_nodes_ns: u64,
}

impl SimAssets {
    /// Builds assets with explicit landmark/embedding configs and
    /// `storage_servers` hash-partitioned storage servers.
    ///
    /// # Panics
    ///
    /// Panics if the graph cannot be loaded (oversized records) — graphs
    /// produced by `grouting-gen` always fit.
    pub fn build(
        graph: Arc<CsrGraph>,
        storage_servers: usize,
        landmark_config: &LandmarkConfig,
        embedding_config: &EmbeddingConfig,
    ) -> Self {
        let tier = Arc::new(StorageTier::new(Arc::new(HashPartitioner::new(
            storage_servers,
        ))));
        tier.load_graph(&graph).expect("generated graphs fit");

        let t0 = std::time::Instant::now();
        let landmarks = Arc::new(Landmarks::build(&graph, landmark_config));
        let landmark_ns = t0.elapsed().as_nanos() as u64;

        let t1 = std::time::Instant::now();
        let embedding = Arc::new(Embedding::build(&landmarks, embedding_config));
        let embed_total_ns = t1.elapsed().as_nanos() as u64;
        // The landmark-embedding stage is the |L|²-term of the pipeline; we
        // report the split by re-measuring the landmark stage alone being
        // negligible next to n per-node placements, so attribute ~|L|/n of
        // the time to it as an estimate when not separately instrumented.
        let l = landmarks.len().max(1) as u64;
        let n = graph.node_count().max(1) as u64;
        let embed_landmarks_ns = embed_total_ns * l / (l + n);

        Self {
            graph,
            tier,
            landmarks,
            embedding,
            timings: PreprocessTimings {
                landmark_ns,
                embed_landmarks_ns,
                embed_nodes_ns: embed_total_ns - embed_landmarks_ns,
            },
        }
    }

    /// Builds assets with the paper's default parameters (96 landmarks at
    /// ≥3 hops separation, D = 10), scaled down for small graphs.
    pub fn paper_defaults(graph: Arc<CsrGraph>, storage_servers: usize) -> Self {
        let n = graph.node_count();
        // On sub-paper-scale graphs, cap landmarks at roughly √n so tiny
        // test graphs don't drown in landmarks.
        let count = 96.min(((n as f64).sqrt() as usize).max(4));
        Self::build(
            graph,
            storage_servers,
            &LandmarkConfig {
                count,
                min_separation: 3,
            },
            &EmbeddingConfig::default(),
        )
    }

    /// The shared-engine view of this bundle: the loaded tier plus both
    /// smart-routing assets.
    pub fn engine_assets(&self) -> grouting_engine::EngineAssets {
        grouting_engine::EngineAssets::new(Arc::clone(&self.tier))
            .with_landmarks(Some(Arc::clone(&self.landmarks)))
            .with_embedding(Some(Arc::clone(&self.embedding)))
    }

    /// Rebuilds only the storage tier with a different server count (the
    /// Figure 8(c) sweep), reusing all preprocessing.
    pub fn with_storage_servers(&self, storage_servers: usize) -> Self {
        let tier = Arc::new(StorageTier::new(Arc::new(HashPartitioner::new(
            storage_servers,
        ))));
        tier.load_graph(&self.graph).expect("graph fit before");
        Self {
            tier,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_graph::{GraphBuilder, NodeId};

    fn ring(k: u32) -> Arc<CsrGraph> {
        let mut b = GraphBuilder::new();
        for i in 0..k {
            b.add_edge(NodeId::new(i), NodeId::new((i + 1) % k));
        }
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn builds_all_assets() {
        let g = ring(64);
        let assets = SimAssets::build(
            Arc::clone(&g),
            3,
            &LandmarkConfig {
                count: 6,
                min_separation: 4,
            },
            &EmbeddingConfig {
                dimensions: 4,
                landmark_sweeps: 1,
                landmark_iters: 100,
                node_iters: 40,
                nearest_landmarks: 6,
                seed: 1,
            },
        );
        assert_eq!(assets.tier.server_count(), 3);
        assert_eq!(assets.landmarks.len(), 6);
        assert_eq!(assets.embedding.node_count(), 64);
        assert!(assets.timings.landmark_ns > 0);
        assert!(assets.timings.embed_nodes_ns > 0);
        // Storage holds one record per node.
        let total: usize = (0..3).map(|s| assets.tier.server(s).len()).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn storage_resize_reuses_preprocessing() {
        let g = ring(32);
        let assets = SimAssets::paper_defaults(g, 2);
        let bigger = assets.with_storage_servers(5);
        assert_eq!(bigger.tier.server_count(), 5);
        assert!(Arc::ptr_eq(&assets.embedding, &bigger.embedding));
        assert!(Arc::ptr_eq(&assets.landmarks, &bigger.landmarks));
        let total: usize = (0..5).map(|s| bigger.tier.server(s).len()).sum();
        assert_eq!(total, 32);
    }
}
