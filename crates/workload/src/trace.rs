//! Serialisable query traces for record/replay.
//!
//! Experiments need the *same* query stream replayed across routing
//! strategies and cluster shapes; a [`QueryTrace`] freezes a workload into
//! a serde-friendly form so benches can also persist it for debugging.

use grouting_graph::{NodeId, NodeLabelId};
use grouting_query::Query;
use serde::{Deserialize, Serialize};

use crate::hotspot::HotspotWorkload;

/// A serialisable rendering of one query.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum TraceEntry {
    /// Neighbour aggregation.
    Agg {
        /// Query node id.
        node: u32,
        /// Traversal radius.
        hops: u32,
        /// Optional label filter.
        label: Option<u16>,
    },
    /// Random walk with restart.
    Rwr {
        /// Start node id.
        node: u32,
        /// Walk length.
        steps: u32,
        /// Restart probability.
        restart: f64,
        /// Walk seed.
        seed: u64,
    },
    /// Reachability.
    Reach {
        /// Source node id.
        source: u32,
        /// Target node id.
        target: u32,
        /// Hop budget.
        hops: u32,
    },
    /// Label-constrained reachability.
    LReach {
        /// Source node id.
        source: u32,
        /// Target node id.
        target: u32,
        /// Hop budget.
        hops: u32,
        /// Required label of intermediate nodes.
        via: u16,
    },
}

impl From<&Query> for TraceEntry {
    fn from(q: &Query) -> Self {
        match q {
            Query::NeighborAggregation { node, hops, label } => TraceEntry::Agg {
                node: node.raw(),
                hops: *hops,
                label: label.map(|l| l.0),
            },
            Query::RandomWalk {
                node,
                steps,
                restart_prob,
                seed,
            } => TraceEntry::Rwr {
                node: node.raw(),
                steps: *steps,
                restart: *restart_prob,
                seed: *seed,
            },
            Query::Reachability {
                source,
                target,
                hops,
            } => TraceEntry::Reach {
                source: source.raw(),
                target: target.raw(),
                hops: *hops,
            },
            Query::ConstrainedReachability {
                source,
                target,
                hops,
                via_label,
            } => TraceEntry::LReach {
                source: source.raw(),
                target: target.raw(),
                hops: *hops,
                via: via_label.0,
            },
        }
    }
}

impl From<&TraceEntry> for Query {
    fn from(e: &TraceEntry) -> Self {
        match e {
            TraceEntry::Agg { node, hops, label } => Query::NeighborAggregation {
                node: NodeId::new(*node),
                hops: *hops,
                label: label.map(NodeLabelId::new),
            },
            TraceEntry::Rwr {
                node,
                steps,
                restart,
                seed,
            } => Query::RandomWalk {
                node: NodeId::new(*node),
                steps: *steps,
                restart_prob: *restart,
                seed: *seed,
            },
            TraceEntry::Reach {
                source,
                target,
                hops,
            } => Query::Reachability {
                source: NodeId::new(*source),
                target: NodeId::new(*target),
                hops: *hops,
            },
            TraceEntry::LReach {
                source,
                target,
                hops,
                via,
            } => Query::ConstrainedReachability {
                source: NodeId::new(*source),
                target: NodeId::new(*target),
                hops: *hops,
                via_label: NodeLabelId::new(*via),
            },
        }
    }
}

/// A frozen query stream.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Default)]
pub struct QueryTrace {
    /// Entries in send order.
    pub entries: Vec<TraceEntry>,
    /// Hotspot group size (0 = ungrouped).
    pub per_hotspot: usize,
}

impl QueryTrace {
    /// Freezes a workload.
    pub fn from_workload(w: &HotspotWorkload) -> Self {
        Self {
            entries: w.queries.iter().map(TraceEntry::from).collect(),
            per_hotspot: w.per_hotspot,
        }
    }

    /// Thaws back into executable queries.
    pub fn queries(&self) -> Vec<Query> {
        self.entries.iter().map(Query::from).collect()
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotspot::{hotspot_workload, WorkloadConfig};
    use grouting_graph::GraphBuilder;

    fn ring(k: u32) -> grouting_graph::CsrGraph {
        let mut b = GraphBuilder::new();
        for i in 0..k {
            b.add_edge(NodeId::new(i), NodeId::new((i + 1) % k));
        }
        b.build().unwrap()
    }

    #[test]
    fn round_trip_preserves_queries() {
        let g = ring(32);
        let w = hotspot_workload(&g, &WorkloadConfig::paper_default(3));
        let trace = QueryTrace::from_workload(&w);
        assert_eq!(trace.len(), w.len());
        let thawed = trace.queries();
        assert_eq!(thawed, w.queries);
    }

    #[test]
    fn empty_trace() {
        let t = QueryTrace::default();
        assert!(t.is_empty());
        assert!(t.queries().is_empty());
    }
}
