//! The r-hop hotspot, h-hop traversal workload generator.

use grouting_graph::traversal::{bfs_within, Direction};
use grouting_graph::{CsrGraph, NodeId};
use grouting_query::Query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::QueryMix;

/// Parameters for a hotspot workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Number of hotspot centres (paper: 100).
    pub hotspots: usize,
    /// Queries drawn per hotspot (paper: 10).
    pub per_hotspot: usize,
    /// Hotspot radius r: query nodes lie within r hops of the centre.
    pub radius: u32,
    /// Traversal depth h of each query.
    pub hops: u32,
    /// Mixture over the three query kinds.
    pub mix: QueryMix,
    /// Restart probability for random-walk queries.
    pub restart_prob: f64,
    /// Workload seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's default: 100 hotspots × 10 queries, r = 2, h = 2,
    /// uniform mix.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            hotspots: 100,
            per_hotspot: 10,
            radius: 2,
            hops: 2,
            mix: QueryMix::uniform(),
            restart_prob: 0.15,
            seed,
        }
    }
}

/// A generated workload: queries grouped by hotspot, sent in order.
#[derive(Debug, Clone)]
pub struct HotspotWorkload {
    /// The hotspot centres, in group order.
    pub centers: Vec<NodeId>,
    /// All queries; group `i` occupies
    /// `queries[i * per_hotspot .. (i+1) * per_hotspot]`.
    pub queries: Vec<Query>,
    /// Queries per hotspot group.
    pub per_hotspot: usize,
}

impl HotspotWorkload {
    /// Total query count.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Iterates over `(hotspot_index, query)` pairs in send order.
    pub fn iter_grouped(&self) -> impl Iterator<Item = (usize, &Query)> + '_ {
        self.queries
            .iter()
            .enumerate()
            .map(|(i, q)| (i / self.per_hotspot.max(1), q))
    }
}

/// Generates the hotspot workload of §4.1.
///
/// # Panics
///
/// Panics if the graph has no non-isolated nodes to centre hotspots on, or
/// if `per_hotspot == 0` / `hotspots == 0`.
pub fn hotspot_workload(g: &CsrGraph, config: &WorkloadConfig) -> HotspotWorkload {
    assert!(config.hotspots > 0, "zero hotspots");
    assert!(config.per_hotspot > 0, "zero queries per hotspot");
    let mut rng = StdRng::seed_from_u64(config.seed);

    let candidates: Vec<NodeId> = g.nodes().filter(|&v| g.degree(v) > 0).collect();
    assert!(
        !candidates.is_empty(),
        "graph has no connected nodes for hotspots"
    );

    let mut centers = Vec::with_capacity(config.hotspots);
    let mut queries = Vec::with_capacity(config.hotspots * config.per_hotspot);

    for _ in 0..config.hotspots {
        let center = candidates[rng.gen_range(0..candidates.len())];
        centers.push(center);
        // The r-hop ball around the centre; query nodes are drawn from it,
        // so any two queries of this hotspot are within 2r of each other.
        let ball: Vec<NodeId> = bfs_within(g, center, config.radius, Direction::Both)
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        for _ in 0..config.per_hotspot {
            let node = ball[rng.gen_range(0..ball.len())];
            queries.push(draw_query(node, &ball, config, &mut rng));
        }
    }

    HotspotWorkload {
        centers,
        queries,
        per_hotspot: config.per_hotspot,
    }
}

fn draw_query(node: NodeId, ball: &[NodeId], config: &WorkloadConfig, rng: &mut StdRng) -> Query {
    let total = config.mix.total();
    let u: f64 = rng.gen::<f64>() * total;
    if u < config.mix.aggregation {
        Query::NeighborAggregation {
            node,
            hops: config.hops,
            label: None,
        }
    } else if u < config.mix.aggregation + config.mix.random_walk {
        Query::RandomWalk {
            node,
            steps: config.hops,
            restart_prob: config.restart_prob,
            seed: rng.gen(),
        }
    } else {
        // Reachability within the hotspot: target drawn from the same ball.
        let target = ball[rng.gen_range(0..ball.len())];
        Query::Reachability {
            source: node,
            target,
            hops: config.hops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_graph::traversal::hop_distance;
    use grouting_graph::GraphBuilder;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn ring(k: u32) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for i in 0..k {
            b.add_edge(n(i), n((i + 1) % k));
        }
        b.build().unwrap()
    }

    fn config(seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            hotspots: 10,
            per_hotspot: 5,
            radius: 2,
            hops: 2,
            mix: QueryMix::uniform(),
            restart_prob: 0.15,
            seed,
        }
    }

    #[test]
    fn workload_shape() {
        let g = ring(64);
        let w = hotspot_workload(&g, &config(1));
        assert_eq!(w.len(), 50);
        assert_eq!(w.centers.len(), 10);
        assert_eq!(w.per_hotspot, 5);
        let groups: Vec<usize> = w.iter_grouped().map(|(g, _)| g).collect();
        assert_eq!(groups[0], 0);
        assert_eq!(groups[4], 0);
        assert_eq!(groups[5], 1);
        assert_eq!(groups[49], 9);
    }

    #[test]
    fn query_nodes_within_radius_of_center() {
        let g = ring(64);
        let w = hotspot_workload(&g, &config(2));
        for (group, q) in w.iter_grouped() {
            let center = w.centers[group];
            let d =
                hop_distance(&g, center, q.anchor(), Direction::Both).expect("anchor in component");
            assert!(d <= 2, "anchor {} at distance {d} from centre", q.anchor());
        }
    }

    #[test]
    fn pairwise_distance_within_hotspot_at_most_2r() {
        let g = ring(64);
        let w = hotspot_workload(&g, &config(3));
        for group in 0..w.centers.len() {
            let anchors: Vec<NodeId> = w
                .iter_grouped()
                .filter(|&(gi, _)| gi == group)
                .map(|(_, q)| q.anchor())
                .collect();
            for i in 0..anchors.len() {
                for j in (i + 1)..anchors.len() {
                    let d = hop_distance(&g, anchors[i], anchors[j], Direction::Both).unwrap();
                    assert!(d <= 4, "pair at distance {d} > 2r");
                }
            }
        }
    }

    #[test]
    fn mixture_contains_all_kinds() {
        let g = ring(128);
        let mut cfg = config(4);
        cfg.hotspots = 40;
        let w = hotspot_workload(&g, &cfg);
        let kinds: std::collections::HashSet<&str> = w.queries.iter().map(|q| q.kind()).collect();
        assert_eq!(kinds.len(), 3, "kinds {kinds:?}");
    }

    #[test]
    fn aggregation_only_mix() {
        let g = ring(32);
        let mut cfg = config(5);
        cfg.mix = QueryMix::aggregation_only();
        let w = hotspot_workload(&g, &cfg);
        assert!(w.queries.iter().all(|q| q.kind() == "agg"));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = ring(64);
        let a = hotspot_workload(&g, &config(7));
        let b = hotspot_workload(&g, &config(7));
        assert_eq!(a.queries, b.queries);
        let c = hotspot_workload(&g, &config(8));
        assert_ne!(a.queries, c.queries);
    }

    #[test]
    #[should_panic(expected = "no connected nodes")]
    fn rejects_graph_of_isolated_nodes() {
        let g = GraphBuilder::with_nodes(5).build().unwrap();
        let _ = hotspot_workload(&g, &config(1));
    }
}
