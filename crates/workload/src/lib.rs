//! Query workload generation (§4.1 "Online Query Workloads").
//!
//! The paper's workload: "we select 100 nodes from the graph uniformly at
//! random. Then, for each of these nodes, we select 10 different query nodes
//! which are at most r-hops away from that node. Thus, we generate 1000
//! queries; every 10 of them are from one hotspot region … all queries from
//! the same hotspot are grouped together and sent consecutively." Queries
//! are a uniform mixture of the three h-hop types.
//!
//! [`hotspot`] builds exactly that; [`trace`] records workloads for replay.

pub mod hotspot;
pub mod trace;

pub use hotspot::{hotspot_workload, HotspotWorkload, WorkloadConfig};
pub use trace::QueryTrace;

/// Relative weights of the three query kinds in a generated workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryMix {
    /// Weight of h-hop neighbour aggregation.
    pub aggregation: f64,
    /// Weight of h-step random walk with restart.
    pub random_walk: f64,
    /// Weight of h-hop reachability.
    pub reachability: f64,
}

impl QueryMix {
    /// The paper's uniform mixture.
    pub fn uniform() -> Self {
        Self {
            aggregation: 1.0,
            random_walk: 1.0,
            reachability: 1.0,
        }
    }

    /// Aggregation-only (used by cache-metric experiments where Eq. 8/9
    /// assume neighbourhood retrieval).
    pub fn aggregation_only() -> Self {
        Self {
            aggregation: 1.0,
            random_walk: 0.0,
            reachability: 0.0,
        }
    }

    /// Total weight.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or any is negative.
    pub fn total(&self) -> f64 {
        assert!(
            self.aggregation >= 0.0 && self.random_walk >= 0.0 && self.reachability >= 0.0,
            "negative mix weight"
        );
        let t = self.aggregation + self.random_walk + self.reachability;
        assert!(t > 0.0, "all mix weights zero");
        t
    }
}

impl Default for QueryMix {
    fn default() -> Self {
        Self::uniform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_mix_total() {
        assert_eq!(QueryMix::uniform().total(), 3.0);
        assert_eq!(QueryMix::aggregation_only().total(), 1.0);
    }

    #[test]
    #[should_panic(expected = "all mix weights zero")]
    fn zero_mix_rejected() {
        let _ = QueryMix {
            aggregation: 0.0,
            random_walk: 0.0,
            reachability: 0.0,
        }
        .total();
    }
}
